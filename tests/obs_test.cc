#include "obs/observability.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "chase/solve.h"
#include "gen/product_demo.h"
#include "obs/json.h"

namespace wqe {
namespace {

TEST(CounterTest, IncAndValue) {
  obs::Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(CounterTest, AggregatesAcrossThreads) {
  obs::Counter c;
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Inc();
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAddValue) {
  obs::Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 7);
  g.Reset();
  EXPECT_EQ(g.Value(), 0);
}

TEST(HistogramTest, CountSumMean) {
  obs::Histogram h;
  h.Observe(100);
  h.Observe(200);
  h.Observe(300);
  const obs::Histogram::Snapshot snap = h.Snap();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.sum, 600u);
  EXPECT_DOUBLE_EQ(snap.Mean(), 200.0);
}

TEST(HistogramTest, QuantileWithinBucketBounds) {
  obs::Histogram h;
  for (int i = 0; i < 1000; ++i) h.Observe(1000);
  const obs::Histogram::Snapshot snap = h.Snap();
  // Power-of-two buckets: the answer is the upper bound of the bucket that
  // holds 1000, so it is within 2x of the true value.
  const uint64_t q50 = snap.Quantile(0.5);
  EXPECT_GE(q50, 1000u);
  EXPECT_LE(q50, 2048u);
  EXPECT_EQ(snap.Quantile(0.0), snap.Quantile(1.0));
}

TEST(HistogramTest, QuantileSeparatesModes) {
  obs::Histogram h;
  for (int i = 0; i < 90; ++i) h.Observe(16);
  for (int i = 0; i < 10; ++i) h.Observe(1u << 20);
  const obs::Histogram::Snapshot snap = h.Snap();
  EXPECT_LE(snap.Quantile(0.5), 64u);
  EXPECT_GE(snap.Quantile(0.99), 1u << 20);
}

TEST(MetricsRegistryTest, NamesReturnStableRefs) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("x");
  obs::Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.Inc(5);
  EXPECT_EQ(reg.counter("x").Value(), 5u);
  EXPECT_NE(&reg.counter("x"), &reg.counter("y"));
}

TEST(MetricsRegistryTest, ToJsonListsAllKinds) {
  obs::MetricsRegistry reg;
  reg.counter("steps").Inc(7);
  reg.gauge("size").Set(-3);
  reg.histogram("lat").Observe(1024);
  const std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"steps\""), std::string::npos);
  EXPECT_NE(json.find("7"), std::string::npos);
  EXPECT_NE(json.find("\"size\""), std::string::npos);
  EXPECT_NE(json.find("-3"), std::string::npos);
  EXPECT_NE(json.find("\"lat\""), std::string::npos);
}

void Spin() {
  // Enough work to register non-zero wall time on any clock.
  volatile uint64_t sink = 0;
  for (int i = 0; i < 200000; ++i) sink = sink + static_cast<uint64_t>(i);
}

TEST(TracerTest, NestedSpansAttributeSelfTime) {
  obs::Tracer tracer;
  {
    obs::ScopedSpan outer(&tracer, "outer");
    Spin();
    {
      obs::ScopedSpan inner(&tracer, "inner");
      Spin();
    }
  }
  const std::vector<obs::PhaseStat> phases = tracer.Phases();
  ASSERT_EQ(phases.size(), 2u);
  const obs::PhaseStat& inner = phases[0];
  const obs::PhaseStat& outer = phases[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(inner.count, 1u);
  EXPECT_EQ(outer.count, 1u);
  EXPECT_GT(outer.wall_seconds, inner.wall_seconds);
  // Inner is a leaf: self == wall. Outer's self excludes inner's wall.
  EXPECT_DOUBLE_EQ(inner.self_seconds, inner.wall_seconds);
  EXPECT_NEAR(outer.self_seconds, outer.wall_seconds - inner.wall_seconds,
              1e-9);
}

TEST(TracerTest, SelfTimesSumToTotalTracedTime) {
  obs::Tracer tracer;
  for (int i = 0; i < 3; ++i) {
    obs::ScopedSpan a(&tracer, "a");
    Spin();
    obs::ScopedSpan b(&tracer, "b");
    Spin();
  }
  double self_sum = 0;
  for (const obs::PhaseStat& p : tracer.Phases()) self_sum += p.self_seconds;
  // The invariant the --metrics-out acceptance check relies on: self time
  // partitions the traced wall time exactly (up to ns rounding per span).
  EXPECT_NEAR(self_sum, tracer.TotalTracedSeconds(), 1e-8);
  EXPECT_GT(tracer.TotalTracedSeconds(), 0.0);
}

TEST(TracerTest, NullTracerSpanIsNoOp) {
  obs::ScopedSpan span(nullptr, "nothing");  // must not crash
  EXPECT_EQ(obs::CurrentTracer(), nullptr);
  WQE_SPAN("also.nothing");
}

TEST(TracerTest, TracerScopeInstallsThreadLocal) {
  obs::Tracer tracer;
  EXPECT_EQ(obs::CurrentTracer(), nullptr);
  {
    obs::TracerScope scope(&tracer);
    EXPECT_EQ(obs::CurrentTracer(), &tracer);
    WQE_SPAN("scoped.phase");
  }
  EXPECT_EQ(obs::CurrentTracer(), nullptr);
  const std::vector<obs::PhaseStat> phases = tracer.Phases();
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_EQ(phases[0].name, "scoped.phase");
}

TEST(TracerTest, ChromeTraceJsonCapturesEvents) {
  obs::Tracer tracer;
  tracer.set_capture_events(true);
  {
    obs::ScopedSpan span(&tracer, "exported");
    Spin();
  }
  const std::string json = tracer.ChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"exported\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(TracerTest, DiffPhasesCarvesOutDeltas) {
  obs::Tracer tracer;
  {
    obs::ScopedSpan span(&tracer, "p");
    Spin();
  }
  const std::vector<obs::PhaseStat> before = tracer.Phases();
  {
    obs::ScopedSpan span(&tracer, "p");
    Spin();
    obs::ScopedSpan fresh(&tracer, "q");
  }
  const std::vector<obs::PhaseStat> delta =
      obs::DiffPhases(before, tracer.Phases());
  ASSERT_EQ(delta.size(), 2u);
  EXPECT_EQ(delta[0].name, "p");
  EXPECT_EQ(delta[0].count, 1u);  // 2 total - 1 before
  EXPECT_EQ(delta[1].name, "q");
  EXPECT_EQ(delta[1].count, 1u);
}

// End-to-end: a solve against a shared Observability populates counters that
// agree with ChaseStats, and phase self times cover the solve span.
class ObservedSolve : public ::testing::TestWithParam<size_t> {};

TEST_P(ObservedSolve, CountersAgreeWithStats) {
  ProductDemo demo;
  obs::Observability o;
  ChaseOptions opts;
  opts.budget = 4;
  opts.num_threads = GetParam();
  opts.observability = &o;
  ChaseResult result = Solve(demo.graph(), demo.Question(), opts);
  ASSERT_TRUE(result.found());
  EXPECT_EQ(o.metrics.counter("chase.steps").Value(), result.stats.steps);
  EXPECT_EQ(o.metrics.counter("chase.evaluations").Value(),
            result.stats.evaluations);
  EXPECT_EQ(o.metrics.counter("chase.memo_hits").Value(),
            result.stats.memo_hits);
  EXPECT_EQ(o.metrics.counter("solve.runs").Value(), 1u);
  // Evaluate() observes its latency on the memo-hit path too.
  EXPECT_EQ(o.metrics.histogram("chase.evaluate_ns").Snap().count,
            result.stats.evaluations + result.stats.memo_hits);

  // The per-run phase breakdown names the solve span and the evaluation
  // phases, and self times sum to the solve span's wall time.
  ASSERT_FALSE(result.stats.phases.empty());
  double self_sum = 0;
  double solve_wall = 0;
  bool saw_eval = false;
  for (const obs::PhaseStat& p : result.stats.phases) {
    self_sum += p.self_seconds;
    if (p.name == "solve.AnsW") solve_wall = p.wall_seconds;
    if (p.name == "chase.evaluate") saw_eval = true;
  }
  EXPECT_TRUE(saw_eval);
  EXPECT_GT(solve_wall, 0.0);
  EXPECT_NEAR(self_sum, solve_wall, 0.1 * solve_wall + 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Threads, ObservedSolve, ::testing::Values(1, 4));

// ---- JSON emission audit: hostile names and values must not break the
// exported documents (the strict parser is the oracle). ----

TEST(MetricsJsonTest, HostileMetricNamesRoundTrip) {
  obs::Observability o;
  const std::string nasty = "evil\"name\\with\nnewline";
  o.metrics.counter(nasty).Inc(3);
  o.metrics.gauge("tab\tgauge").Set(-4);
  o.metrics.histogram("hist\x01ctrl").Observe(1000);
  const std::string doc = obs::ExportMetricsJson(o, 1.0);
  auto parsed = obs::ParseJson(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << doc;
  const obs::JsonValue* metrics = parsed.value().Find("metrics");
  ASSERT_NE(metrics, nullptr);
  const obs::JsonValue* counters = metrics->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->NumberOr(nasty, 0), 3.0);
  EXPECT_EQ(metrics->Find("gauges")->NumberOr("tab\tgauge", 0), -4.0);
  EXPECT_NE(metrics->Find("histograms")->Find("hist\x01ctrl"), nullptr);
}

TEST(MetricsJsonTest, HistogramExportCarriesP50P90P99) {
  obs::Observability o;
  obs::Histogram& h = o.metrics.histogram("lat");
  for (int i = 0; i < 90; ++i) h.Observe(100);
  for (int i = 0; i < 9; ++i) h.Observe(10000);
  h.Observe(1000000);
  auto parsed = obs::ParseJson(o.metrics.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const obs::JsonValue* lat = parsed.value().Find("histograms")->Find("lat");
  ASSERT_NE(lat, nullptr);
  const double p50 = lat->NumberOr("p50", 0);
  const double p90 = lat->NumberOr("p90", 0);
  const double p99 = lat->NumberOr("p99", 0);
  EXPECT_GT(p50, 0);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  // p90 lands in the 100-value bucket region, p99 above it (2x bucket error).
  EXPECT_LT(p90, 10000 * 2.0);
  EXPECT_GE(p99, 10000);
}

TEST(TracerJsonTest, HostileSpanNamesProduceValidChromeTrace) {
  obs::Tracer tracer;
  tracer.set_capture_events(true);
  {
    obs::TracerScope scope(&tracer);
    obs::ScopedSpan span(&tracer, "span\"with\\quotes\nand newline");
  }
  auto parsed = obs::ParseJson(tracer.ChromeTraceJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
}

}  // namespace
}  // namespace wqe
