#include "query/op_sequence.h"

#include <gtest/gtest.h>

namespace wqe {
namespace {

constexpr uint32_t kMaxBound = 3;

Op RmL(QNodeId u, AttrId attr, double c) {
  Op op;
  op.kind = OpKind::kRmL;
  op.u = u;
  op.lit = {attr, CmpOp::kGe, Value::Num(c)};
  return op;
}

Op AddL(QNodeId u, AttrId attr, double c) {
  Op op;
  op.kind = OpKind::kAddL;
  op.u = u;
  op.lit = {attr, CmpOp::kGe, Value::Num(c)};
  return op;
}

Op RxE(QNodeId a, QNodeId b, uint32_t from, uint32_t to) {
  Op op;
  op.kind = OpKind::kRxE;
  op.u = a;
  op.v = b;
  op.bound = from;
  op.new_bound = to;
  return op;
}

Op RmE(QNodeId a, QNodeId b) {
  Op op;
  op.kind = OpKind::kRmE;
  op.u = a;
  op.v = b;
  return op;
}

TEST(OpSequenceTest, CanonicalWhenNoCancelOut) {
  OpSequence seq({RmL(0, 1, 5), AddL(0, 2, 3), RxE(0, 1, 1, 2)});
  EXPECT_TRUE(seq.IsCanonical());
}

TEST(OpSequenceTest, CancelOutOnSameLiteralDetected) {
  // Remove then re-add a literal on the same (node, attribute): o6/o7 of
  // Example 4.2.
  OpSequence seq({RmL(0, 1, 5), AddL(0, 1, 5)});
  EXPECT_FALSE(seq.IsCanonical());
}

TEST(OpSequenceTest, CancelOutOnSameEdgeDetected) {
  Op rfe;
  rfe.kind = OpKind::kRfE;
  rfe.u = 0;
  rfe.v = 1;
  rfe.bound = 2;
  rfe.new_bound = 1;
  OpSequence seq({RxE(0, 1, 1, 2), rfe});
  EXPECT_FALSE(seq.IsCanonical());
}

TEST(OpSequenceTest, DifferentNodesDoNotConflict) {
  OpSequence seq({RmL(0, 1, 5), AddL(1, 1, 5)});
  EXPECT_TRUE(seq.IsCanonical());
}

TEST(OpSequenceTest, NormalFormPutsRelaxationsFirst) {
  OpSequence seq({AddL(0, 2, 3), RmL(0, 1, 5), RxE(0, 1, 1, 2)});
  EXPECT_FALSE(seq.IsNormalForm());
  OpSequence normal = seq.NormalForm();
  EXPECT_TRUE(normal.IsNormalForm());
  ASSERT_EQ(normal.size(), 3u);
  EXPECT_TRUE(normal.ops()[0].is_relax());
  EXPECT_TRUE(normal.ops()[1].is_relax());
  EXPECT_TRUE(normal.ops()[2].is_refine());
}

TEST(OpSequenceTest, NormalFormPhaseOrdering) {
  // Relax phase: RxL < RxE < RmL < RmE; refine: AddE < AddL < RfE < RfL.
  Op rxl;
  rxl.kind = OpKind::kRxL;
  rxl.u = 0;
  rxl.lit = {1, CmpOp::kGe, Value::Num(5)};
  rxl.new_lit = {1, CmpOp::kGe, Value::Num(4)};
  Op adde;
  adde.kind = OpKind::kAddE;
  adde.u = 0;
  adde.v = 2;
  adde.new_bound = 1;
  Op rfl;
  rfl.kind = OpKind::kRfL;
  rfl.u = 1;
  rfl.lit = {2, CmpOp::kLe, Value::Num(9)};
  rfl.new_lit = {2, CmpOp::kLe, Value::Num(7)};

  OpSequence seq({rfl, RmE(0, 1), adde, rxl});
  OpSequence normal = seq.NormalForm();
  ASSERT_EQ(normal.size(), 4u);
  EXPECT_EQ(normal.ops()[0].kind, OpKind::kRxL);
  EXPECT_EQ(normal.ops()[1].kind, OpKind::kRmE);
  EXPECT_EQ(normal.ops()[2].kind, OpKind::kAddE);
  EXPECT_EQ(normal.ops()[3].kind, OpKind::kRfL);
}

// Lemma 4.1 property: a canonical sequence and its normal form produce the
// same rewrite.
TEST(OpSequenceTest, NormalFormIsEquivalentRewrite) {
  PatternQuery base;
  QNodeId f = base.AddNode(1);
  QNodeId a = base.AddNode(2);
  QNodeId b = base.AddNode(3);
  base.SetFocus(f);
  base.AddEdge(f, a, 1);
  base.AddEdge(f, b, 2);
  base.AddLiteral(f, {10, CmpOp::kGe, Value::Num(100)});
  base.AddLiteral(a, {11, CmpOp::kLe, Value::Num(50)});

  // Mixed canonical sequence: refine then relax then refine.
  Op rfe;
  rfe.kind = OpKind::kRfE;
  rfe.u = f;
  rfe.v = b;
  rfe.bound = 2;
  rfe.new_bound = 1;
  OpSequence mixed({AddL(f, 12, 7), RmL(f, 10, 100), rfe});
  ASSERT_TRUE(mixed.IsCanonical());

  PatternQuery q1 = base;
  ASSERT_TRUE(mixed.ApplyAll(&q1, kMaxBound));
  PatternQuery q2 = base;
  ASSERT_TRUE(mixed.NormalForm().ApplyAll(&q2, kMaxBound));
  EXPECT_EQ(q1.Fingerprint(), q2.Fingerprint());
}

TEST(OpSequenceTest, CostSumsOperatorCosts) {
  Graph g;
  NodeId v = g.AddNode("N");
  g.SetNum(v, "x", 0);
  NodeId w = g.AddNode("N");
  g.SetNum(w, "x", 100);
  g.Finalize();
  ActiveDomains adom(g);
  const AttrId x = g.schema().LookupAttr("x");

  OpSequence seq({RmL(0, x, 5), AddL(0, x, 3)});
  EXPECT_DOUBLE_EQ(seq.Cost(adom, 4), 2.0);

  OpSequence with_edge({RmL(0, x, 5), RmE(0, 1)});
  // RmE carries bound 1 by default: 1 + 1/4.
  EXPECT_DOUBLE_EQ(with_edge.Cost(adom, 4), 2.25);
}

TEST(OpSequenceTest, ApplyAllStopsOnInapplicable) {
  PatternQuery q;
  QNodeId f = q.AddNode(1);
  q.SetFocus(f);
  OpSequence seq({RmL(f, 1, 5)});  // literal not present
  EXPECT_FALSE(seq.ApplyAll(&q, kMaxBound));
}

TEST(OpSequenceTest, NoOpsAreDroppedFromNormalForm) {
  OpSequence seq({Op{}, RmL(0, 1, 5), Op{}});
  OpSequence normal = seq.NormalForm();
  EXPECT_EQ(normal.size(), 1u);
}

}  // namespace
}  // namespace wqe
