#include "graph/diameter.h"

#include <gtest/gtest.h>

namespace wqe {
namespace {

TEST(DiameterTest, PathGraphExact) {
  Graph g;
  for (int i = 0; i < 8; ++i) g.AddNode("N");
  for (int i = 0; i < 7; ++i) g.AddEdge(static_cast<NodeId>(i), static_cast<NodeId>(i + 1));
  g.Finalize();
  // Double sweep is exact on trees.
  EXPECT_EQ(EstimateDiameter(g), 7u);
}

TEST(DiameterTest, StarGraph) {
  Graph g;
  g.AddNode("Hub");
  for (int i = 1; i <= 6; ++i) {
    g.AddNode("Leaf");
    g.AddEdge(0, static_cast<NodeId>(i));
  }
  g.Finalize();
  EXPECT_EQ(EstimateDiameter(g), 2u);
}

TEST(DiameterTest, AtLeastOneForEmptyAndSingleton) {
  Graph empty;
  empty.Finalize();
  EXPECT_GE(EstimateDiameter(empty), 1u);
  Graph single;
  single.AddNode("N");
  single.Finalize();
  EXPECT_GE(EstimateDiameter(single), 1u);
}

TEST(DiameterTest, IgnoresEdgeDirection) {
  // Directed chain 0 <- 1 <- 2: undirected diameter 2.
  Graph g;
  for (int i = 0; i < 3; ++i) g.AddNode("N");
  g.AddEdge(1, 0);
  g.AddEdge(2, 1);
  g.Finalize();
  EXPECT_EQ(EstimateDiameter(g), 2u);
}

}  // namespace
}  // namespace wqe
