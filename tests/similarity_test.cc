#include "exemplar/similarity.h"

#include <gtest/gtest.h>

namespace wqe {
namespace {

TEST(NumSimilarityTest, ExactMatchIsOne) {
  EXPECT_DOUBLE_EQ(NumSimilarity(5, 5, 10), 1.0);
}

TEST(NumSimilarityTest, LinearInDistance) {
  EXPECT_DOUBLE_EQ(NumSimilarity(5, 10, 10), 0.5);
  EXPECT_DOUBLE_EQ(NumSimilarity(0, 10, 10), 0.0);
}

TEST(NumSimilarityTest, ClampedToZero) {
  EXPECT_DOUBLE_EQ(NumSimilarity(0, 100, 10), 0.0);
}

TEST(NumSimilarityTest, ZeroRangeFallsBackToEquality) {
  EXPECT_DOUBLE_EQ(NumSimilarity(5, 5, 0), 1.0);
  EXPECT_DOUBLE_EQ(NumSimilarity(5, 6, 0), 0.0);
}

TEST(StrSimilarityTest, IdenticalStrings) {
  EXPECT_DOUBLE_EQ(StrSimilarity("samsung", "samsung"), 1.0);
  EXPECT_DOUBLE_EQ(StrSimilarity("", ""), 1.0);
}

TEST(StrSimilarityTest, CompletelyDifferent) {
  EXPECT_DOUBLE_EQ(StrSimilarity("abc", "xyz"), 0.0);
}

TEST(StrSimilarityTest, SingleEdit) {
  // One substitution over length 4.
  EXPECT_DOUBLE_EQ(StrSimilarity("note", "nose"), 0.75);
}

TEST(StrSimilarityTest, EmptyVsNonEmpty) {
  EXPECT_DOUBLE_EQ(StrSimilarity("", "abc"), 0.0);
}

TEST(StrSimilarityTest, SymmetricInArguments) {
  EXPECT_DOUBLE_EQ(StrSimilarity("kitten", "sitting"),
                   StrSimilarity("sitting", "kitten"));
}

TEST(ValueSimilarityTest, DispatchesOnKind) {
  Interner strings;
  EXPECT_DOUBLE_EQ(ValueSimilarity(Value::Num(5), Value::Num(5), 10, strings), 1.0);
  EXPECT_DOUBLE_EQ(ValueSimilarity(Value::Num(0), Value::Num(5), 10, strings), 0.5);
  const SymbolId a = strings.Intern("alpha");
  const SymbolId b = strings.Intern("alphb");
  EXPECT_DOUBLE_EQ(ValueSimilarity(Value::Str(a), Value::Str(a), 1, strings), 1.0);
  EXPECT_DOUBLE_EQ(ValueSimilarity(Value::Str(a), Value::Str(b), 1, strings), 0.8);
  EXPECT_DOUBLE_EQ(ValueSimilarity(Value::Num(5), Value::Str(a), 1, strings), 0.0);
  EXPECT_DOUBLE_EQ(ValueSimilarity(Value::Null(), Value::Num(5), 1, strings), 0.0);
}

}  // namespace
}  // namespace wqe
