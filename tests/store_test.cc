#include "store/artifact_store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "chase/solve.h"
#include "gen/product_demo.h"
#include "graph/adom.h"
#include "graph/distance_index.h"
#include "match/star.h"
#include "match/star_table.h"
#include "match/view_cache.h"
#include "obs/observability.h"
#include "store/format.h"
#include "store/serde.h"

namespace wqe {
namespace {

namespace fs = std::filesystem;

// Fresh per-test cache directory under the gtest temp dir.
class StoreFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/wqe_store_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  const Graph& graph() { return demo_.graph(); }
  uint64_t fp() { return store::Serde::GraphFingerprint(graph()); }
  store::ArtifactStore MakeStore() { return store::ArtifactStore(dir_, fp()); }

  /// Flips one byte at `offset` (negative = from the end) in an artifact.
  static void FlipByte(const std::string& path, long offset) {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good()) << path;
    const auto dir = offset < 0 ? std::ios::end : std::ios::beg;
    f.seekg(offset, dir);
    char c = 0;
    f.read(&c, 1);
    f.seekp(offset, dir);
    c = static_cast<char>(c ^ 0x5a);
    f.write(&c, 1);
  }

  static void Truncate(const std::string& path, size_t keep) {
    std::error_code ec;
    fs::resize_file(path, keep, ec);
    ASSERT_FALSE(ec) << ec.message();
  }

  ProductDemo demo_;
  std::string dir_;
};

TEST_F(StoreFixture, GraphFingerprintStableAndSensitive) {
  EXPECT_EQ(fp(), store::Serde::GraphFingerprint(graph()));

  Graph other;
  other.AddNode("A");
  other.AddNode("B");
  other.AddEdge(0, 1, kWildcardSymbol);
  other.Finalize();
  Graph other2;
  other2.AddNode("A");
  other2.AddNode("B");
  other2.AddEdge(1, 0, kWildcardSymbol);  // reversed edge: different graph
  other2.Finalize();
  EXPECT_NE(store::Serde::GraphFingerprint(other),
            store::Serde::GraphFingerprint(other2));
}

TEST_F(StoreFixture, GraphPayloadRoundTripIsByteIdentical) {
  const std::string bytes = store::Serde::EncodeGraph(graph());
  Graph restored;
  ASSERT_TRUE(store::Serde::DecodeGraph(bytes, &restored).ok());
  EXPECT_EQ(store::Serde::EncodeGraph(restored), bytes);
  EXPECT_EQ(restored.num_nodes(), graph().num_nodes());
  EXPECT_EQ(restored.num_edges(), graph().num_edges());
  // Attribute values survive (the demo's price attribute).
  const AttrId price = restored.schema().LookupAttr("price");
  ASSERT_NE(restored.attr(demo_.p(1), price), nullptr);
  EXPECT_DOUBLE_EQ(restored.attr(demo_.p(1), price)->num(),
                   graph().attr(demo_.p(1), price)->num());
}

TEST_F(StoreFixture, GraphSnapshotRejectsWrongKey) {
  const std::string path = dir_ + "/snap.wqes";
  ASSERT_TRUE(store::ArtifactStore::SaveGraphSnapshot(path, graph(), 42).ok());
  Graph out;
  EXPECT_TRUE(store::ArtifactStore::LoadGraphSnapshot(path, 42, &out).ok());
  Graph out2;
  EXPECT_FALSE(store::ArtifactStore::LoadGraphSnapshot(path, 43, &out2).ok());
}

TEST_F(StoreFixture, AdomRoundTrip) {
  auto s = MakeStore();
  ActiveDomains a(graph());
  ASSERT_TRUE(s.SaveAdom(a).ok());
  std::unique_ptr<ActiveDomains> restored;
  ASSERT_TRUE(s.LoadAdom(graph(), &restored).ok());
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(store::Serde::EncodeAdom(*restored), store::Serde::EncodeAdom(a));
}

TEST_F(StoreFixture, DiameterRoundTripAndMissIsCleanNotFound) {
  auto s = MakeStore();
  uint32_t d = 0;
  const Status miss = s.LoadDiameter(&d);
  EXPECT_FALSE(miss.ok());
  EXPECT_EQ(miss.code(), Status::Code::kNotFound);  // miss, not corruption
  ASSERT_TRUE(s.SaveDiameter(7).ok());
  ASSERT_TRUE(s.LoadDiameter(&d).ok());
  EXPECT_EQ(d, 7u);
}

TEST_F(StoreFixture, DistanceIndexRoundTripIsByteIdentical) {
  auto s = MakeStore();
  DistanceIndex::Options opts;
  DistanceIndex cold(graph(), opts);
  ASSERT_TRUE(s.SaveDistanceIndex(cold, opts).ok());
  std::unique_ptr<DistanceIndex> warm;
  ASSERT_TRUE(s.LoadDistanceIndex(graph(), opts, &warm).ok());
  ASSERT_NE(warm, nullptr);
  EXPECT_EQ(store::Serde::EncodeDistanceIndex(*warm),
            store::Serde::EncodeDistanceIndex(cold));
}

TEST_F(StoreFixture, DistanceIndexParamsChangeIsAMiss) {
  auto s = MakeStore();
  DistanceIndex::Options opts;
  DistanceIndex cold(graph(), opts);
  ASSERT_TRUE(s.SaveDistanceIndex(cold, opts).ok());
  DistanceIndex::Options other = opts;
  other.use_pll = !other.use_pll;
  std::unique_ptr<DistanceIndex> warm;
  EXPECT_FALSE(s.LoadDistanceIndex(graph(), other, &warm).ok());
}

TEST_F(StoreFixture, DistanceIndexThreadCountDoesNotChangeParams) {
  DistanceIndex::Options a;
  DistanceIndex::Options b = a;
  b.num_threads = 8;  // parallel build is byte-identical; same artifact
  EXPECT_EQ(store::DistanceIndexParams(a), store::DistanceIndexParams(b));
}

TEST_F(StoreFixture, StarViewsRoundTripThroughCache) {
  auto s = MakeStore();
  PatternQuery q = demo_.Query();
  auto stars = DecomposeStars(q);
  ASSERT_FALSE(stars.empty());
  StarMaterializer mat(graph());
  ViewCache cache;
  for (const StarQuery& star : stars) {
    cache.Put(star.Signature(q), mat.Materialize(q, star));
  }
  ASSERT_TRUE(s.SaveStarViews(cache, /*max_persisted_entries=*/1u << 20).ok());

  ViewCache warmed;
  ASSERT_TRUE(s.WarmStarViews(graph(), &warmed).ok());
  EXPECT_EQ(warmed.size(), cache.size());
  EXPECT_EQ(warmed.entry_count(), cache.entry_count());
  // Each warmed table re-encodes to the same bytes as the live one.
  cache.ForEach([&](const std::string& sig,
                    const std::shared_ptr<const StarTable>& live) {
    auto loaded = warmed.Get(sig);
    ASSERT_NE(loaded, nullptr) << sig;
    store::Writer a, b;
    store::Serde::EncodeStarTable(*live, a);
    store::Serde::EncodeStarTable(*loaded, b);
    EXPECT_EQ(a.bytes(), b.bytes()) << sig;
  });
}

TEST_F(StoreFixture, CorruptedPayloadDegradesToRebuild) {
  auto s = MakeStore();
  ASSERT_TRUE(s.SaveDiameter(9).ok());
  const std::string path = s.ArtifactPath(store::ArtifactKind::kDiameter);
  FlipByte(path, -1);  // last payload byte: checksum must catch it
  uint32_t d = 0;
  const Status st = s.LoadDiameter(&d);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.code(), Status::Code::kNotFound);  // rejected, not missing
  // The rebuild path overwrites the bad file and the store recovers.
  ASSERT_TRUE(s.SaveDiameter(9).ok());
  ASSERT_TRUE(s.LoadDiameter(&d).ok());
  EXPECT_EQ(d, 9u);
}

TEST_F(StoreFixture, TruncatedFileIsRejected) {
  auto s = MakeStore();
  ASSERT_TRUE(s.SaveDiameter(9).ok());
  const std::string path = s.ArtifactPath(store::ArtifactKind::kDiameter);
  Truncate(path, 10);  // not even a whole header
  uint32_t d = 0;
  EXPECT_FALSE(s.LoadDiameter(&d).ok());
}

TEST_F(StoreFixture, VersionBumpIsRejected) {
  auto s = MakeStore();
  ASSERT_TRUE(s.SaveDiameter(9).ok());
  const std::string path = s.ArtifactPath(store::ArtifactKind::kDiameter);
  FlipByte(path, 4);  // header version field
  uint32_t d = 0;
  EXPECT_FALSE(s.LoadDiameter(&d).ok());
}

TEST_F(StoreFixture, CorruptedStarViewsNeverHalfWarmTheCache) {
  auto s = MakeStore();
  PatternQuery q = demo_.Query();
  auto stars = DecomposeStars(q);
  StarMaterializer mat(graph());
  ViewCache cache;
  for (const StarQuery& star : stars) {
    cache.Put(star.Signature(q), mat.Materialize(q, star));
  }
  ASSERT_TRUE(s.SaveStarViews(cache, 1u << 20).ok());
  FlipByte(s.ArtifactPath(store::ArtifactKind::kStarViews), -1);
  ViewCache warmed;
  EXPECT_FALSE(s.WarmStarViews(graph(), &warmed).ok());
  EXPECT_EQ(warmed.size(), 0u);  // all-or-nothing warm-up
}

TEST_F(StoreFixture, GraphIndexesColdAndWarmAreByteIdentical) {
  auto s = MakeStore();
  GraphIndexes cold(graph(), /*num_threads=*/1, &s);  // builds + writes back
  GraphIndexes warm(graph(), /*num_threads=*/1, &s);  // loads the snapshots
  EXPECT_EQ(warm.diameter, cold.diameter);
  EXPECT_EQ(store::Serde::EncodeAdom(warm.adom),
            store::Serde::EncodeAdom(cold.adom));
  EXPECT_EQ(store::Serde::EncodeDistanceIndex(warm.dist),
            store::Serde::EncodeDistanceIndex(cold.dist));
}

TEST_F(StoreFixture, SolveColdThenWarmGivesIdenticalAnswers) {
  WhyQuestion w{demo_.Query(), demo_.MakeExemplar()};
  ChaseOptions opts;
  opts.cache_dir = dir_;
  opts.max_steps = 200;

  obs::Observability cold_obs;
  opts.observability = &cold_obs;
  ChaseResult cold = Solve(graph(), w, opts);
  ASSERT_TRUE(cold.ok());

  obs::Observability warm_obs;
  opts.observability = &warm_obs;
  ChaseResult warm = Solve(graph(), w, opts);
  ASSERT_TRUE(warm.ok());

  // The warm run actually used the store...
  EXPECT_GT(warm_obs.metrics.counter("store.hits").Value(), 0u);
  // ...and produced the same answers, closeness, and matches.
  ASSERT_EQ(warm.answers.size(), cold.answers.size());
  for (size_t i = 0; i < warm.answers.size(); ++i) {
    EXPECT_EQ(warm.answers[i].fingerprint, cold.answers[i].fingerprint);
    EXPECT_EQ(warm.answers[i].matches, cold.answers[i].matches);
    EXPECT_DOUBLE_EQ(warm.answers[i].closeness, cold.answers[i].closeness);
  }
}

TEST_F(StoreFixture, MutatedGraphRejectsStaleArtifacts) {
  auto s = MakeStore();
  ASSERT_TRUE(s.SaveDiameter(5).ok());
  // Same directory, different graph: the fingerprint key changes, so the
  // store looks in a different per-graph subdirectory — a clean miss.
  Graph other;
  other.AddNode("A");
  other.Finalize();
  store::ArtifactStore s2(dir_, store::Serde::GraphFingerprint(other));
  uint32_t d = 0;
  const Status st = s2.LoadDiameter(&d);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kNotFound);
}

}  // namespace
}  // namespace wqe
