#include "chase/session.h"

#include <gtest/gtest.h>

#include "gen/product_demo.h"

namespace wqe {
namespace {

class SessionFixture : public ::testing::Test {
 protected:
  SessionFixture() {
    ChaseOptions opts;
    opts.budget = 4;
    opts.top_k = 2;
    session_ = std::make_unique<ExploratorySession>(demo_.graph(), opts);
  }

  ProductDemo demo_;
  std::unique_ptr<ExploratorySession> session_;
};

TEST_F(SessionFixture, IssueEvaluatesQuery) {
  EXPECT_FALSE(session_->has_query());
  const auto& answer = session_->Issue(demo_.Query());
  EXPECT_TRUE(session_->has_query());
  EXPECT_EQ(answer.size(), 3u);  // {P1, P2, P5}
  EXPECT_EQ(session_->current_answer(), answer);
}

TEST_F(SessionFixture, AskWithoutQueryReturnsEmpty) {
  ChaseResult r = session_->Ask(demo_.MakeExemplar());
  EXPECT_FALSE(r.found());
}

TEST_F(SessionFixture, FullWorkflowIssueAskAccept) {
  session_->Issue(demo_.Query());
  ChaseResult r = session_->Ask(demo_.MakeExemplar());
  ASSERT_TRUE(r.found());
  EXPECT_TRUE(r.best().satisfies_exemplar);
  EXPECT_NEAR(r.best().closeness, 0.5, 1e-9);

  // The explanation names the recovered entities.
  const std::string why = session_->Explain(r.best());
  EXPECT_NE(why.find("P3"), std::string::npos);

  session_->Accept(r.best());
  std::vector<NodeId> expected = {demo_.p(3), demo_.p(4), demo_.p(5)};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(session_->current_answer(), expected);
  EXPECT_EQ(session_->current_query().Fingerprint(),
            r.best().rewrite.Fingerprint());
}

TEST_F(SessionFixture, AskByExamplesDesignatesEntities) {
  session_->Issue(demo_.Query());
  std::vector<NodeId> wanted = {demo_.p(3), demo_.p(4)};
  ChaseResult r = session_->AskByExamples(wanted);
  ASSERT_TRUE(r.found());
  EXPECT_TRUE(r.best().satisfies_exemplar);
  // Both designated phones recovered.
  for (NodeId v : wanted) {
    EXPECT_TRUE(std::binary_search(r.best().matches.begin(),
                                   r.best().matches.end(), v));
  }
}

TEST_F(SessionFixture, CachePersistsAcrossQuestions) {
  session_->Issue(demo_.Query());
  session_->Ask(demo_.MakeExemplar());
  const uint64_t hits_after_first = session_->cache().hits();
  // Asking again re-derives the same rewrites: the star views are served
  // from the session cache.
  session_->Ask(demo_.MakeExemplar());
  EXPECT_GT(session_->cache().hits(), hits_after_first);
}

TEST_F(SessionFixture, StatsAccumulateAcrossAsks) {
  session_->Issue(demo_.Query());
  session_->Ask(demo_.MakeExemplar());
  const uint64_t steps_first = session_->stats().steps;
  EXPECT_GT(steps_first, 0u);
  session_->Ask(demo_.MakeExemplar());
  EXPECT_GT(session_->stats().steps, steps_first);
}

TEST_F(SessionFixture, TopKFlowsThroughDefaults) {
  session_->Issue(demo_.Query());
  ChaseResult r = session_->Ask(demo_.MakeExemplar());
  EXPECT_GE(r.answers.size(), 2u);
}

}  // namespace
}  // namespace wqe
