#include "obs/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace wqe {
namespace {

using obs::JsonNumber;
using obs::JsonString;
using obs::JsonValue;
using obs::ParseJson;

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControlChars) {
  EXPECT_EQ(JsonString("plain"), "\"plain\"");
  EXPECT_EQ(JsonString("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(JsonString("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(JsonString("line1\nline2"), "\"line1\\nline2\"");
  EXPECT_EQ(JsonString("tab\there"), "\"tab\\there\"");
  EXPECT_EQ(JsonString(std::string("nul\0byte", 8)), "\"nul\\u0000byte\"");
  EXPECT_EQ(JsonString("\x1f"), "\"\\u001f\"");
}

TEST(JsonEscapeTest, HighBytesPassThroughUnescaped) {
  // UTF-8 payloads (e.g. node names from real datasets) must not be mangled.
  const std::string utf8 = "caf\xc3\xa9";
  EXPECT_EQ(JsonString(utf8), "\"" + utf8 + "\"");
}

TEST(JsonEscapeTest, EscapedStringRoundTripsThroughParser) {
  const std::string nasty = "q\"uo\\te\n\t\x01\x1f\xc3\xa9 end";
  auto parsed = ParseJson(JsonString(nasty));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(parsed.value().is_string());
  EXPECT_EQ(parsed.value().str, nasty);
}

TEST(JsonNumberTest, FiniteValuesRoundTrip) {
  for (double v : {0.0, -1.5, 3.14159265358979, 1e-300, 1.7976931348623157e308,
                   0.1, 123456789.123456789}) {
    auto parsed = ParseJson(JsonNumber(v));
    ASSERT_TRUE(parsed.ok()) << JsonNumber(v);
    ASSERT_TRUE(parsed.value().is_number());
    EXPECT_EQ(parsed.value().number, v) << JsonNumber(v);
  }
}

TEST(JsonNumberTest, NonFiniteBecomesParseableStrings) {
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(JsonNumber(nan), "\"NaN\"");
  EXPECT_EQ(JsonNumber(inf), "\"Infinity\"");
  EXPECT_EQ(JsonNumber(-inf), "\"-Infinity\"");
  // A document embedding them stays valid JSON.
  const std::string doc = "{\"a\":" + JsonNumber(nan) + ",\"b\":" +
                          JsonNumber(inf) + "}";
  auto parsed = ParseJson(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().StringOr("a", ""), "NaN");
}

TEST(JsonParseTest, ParsesScalarsArraysObjects) {
  auto v = ParseJson(R"({"s":"x","n":-2.5e3,"t":true,"f":false,"z":null,
                         "a":[1,2,3],"o":{"k":"v"}})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  const JsonValue& root = v.value();
  EXPECT_EQ(root.StringOr("s", ""), "x");
  EXPECT_EQ(root.NumberOr("n", 0), -2500.0);
  EXPECT_TRUE(root.BoolOr("t", false));
  EXPECT_FALSE(root.BoolOr("f", true));
  ASSERT_NE(root.Find("z"), nullptr);
  EXPECT_TRUE(root.Find("z")->is_null());
  ASSERT_NE(root.Find("a"), nullptr);
  ASSERT_EQ(root.Find("a")->items.size(), 3u);
  EXPECT_EQ(root.Find("a")->items[1].number, 2.0);
  EXPECT_EQ(root.Find("o")->StringOr("k", ""), "v");
}

TEST(JsonParseTest, PreservesKeyOrder) {
  auto v = ParseJson(R"({"zebra":1,"apple":2})");
  ASSERT_TRUE(v.ok());
  ASSERT_EQ(v.value().members.size(), 2u);
  EXPECT_EQ(v.value().members[0].first, "zebra");
  EXPECT_EQ(v.value().members[1].first, "apple");
}

TEST(JsonParseTest, DecodesUnicodeEscapesIncludingSurrogatePairs) {
  auto v = ParseJson(R"("\u0041\u00e9\u20ac\ud83d\ude00")");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v.value().str, "A\xc3\xa9\xe2\x82\xac\xf0\x9f\x98\x80");
}

TEST(JsonParseTest, RejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "tru", "01", "1.",
        "\"unterminated", "{\"a\":1} trailing", "[1] [2]", "nan",
        "\"bad\\escape\"", "\"\\ud800\"", "{'a':1}", "+1"}) {
    EXPECT_FALSE(ParseJson(bad).ok()) << "accepted: " << bad;
  }
}

TEST(JsonParseTest, RejectsExcessiveNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(ParseJson(deep).ok());
  // 32 levels is fine.
  std::string ok(32, '[');
  ok += std::string(32, ']');
  EXPECT_TRUE(ParseJson(ok).ok());
}

TEST(JsonParseTest, ErrorsCarryOffsets) {
  auto v = ParseJson("{\"a\": bad}");
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.status().message().find("offset"), std::string::npos)
      << v.status().message();
}

}  // namespace
}  // namespace wqe
