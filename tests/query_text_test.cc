#include "query/query_text.h"

#include <gtest/gtest.h>

#include "gen/product_demo.h"

namespace wqe {
namespace {

TEST(QueryTextTest, RoundTripProductQuery) {
  ProductDemo demo;
  Schema schema = demo.graph().schema();  // copy to intern into
  const PatternQuery q = demo.Query();
  const std::string text = QueryText::ToText(q, schema);
  auto parsed = QueryText::Parse(text, &schema);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().Fingerprint(), q.Fingerprint());
}

TEST(QueryTextTest, RoundTripPreservesAwkwardNumericConstants) {
  ProductDemo demo;
  Schema schema = demo.graph().schema();
  PatternQuery q;
  const QNodeId u = q.AddNode(schema.LookupLabel("Product"));
  q.SetFocus(u);
  // A constant %g would truncate — the fingerprint (and thus replay
  // verification) must survive the text round trip bit for bit.
  q.AddLiteral(u, {schema.LookupAttr("price"), CmpOp::kGe,
                   Value::Num(1574.213859)});
  const std::string text = QueryText::ToText(q, schema);
  auto parsed = QueryText::Parse(text, &schema);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().Fingerprint(), q.Fingerprint());
}

TEST(QueryTextTest, ParsesWildcardLabelAndAnyLiteral) {
  Schema schema;
  const std::string text =
      "wqe-query v1\n"
      "focus 0\n"
      "node 0 _\n"
      "lit 0 price >= num 10\n"
      "lit 0 color = any\n";
  auto parsed = QueryText::Parse(text, &schema);
  ASSERT_TRUE(parsed.ok());
  const PatternQuery& q = parsed.value();
  EXPECT_EQ(q.node(0).label, kWildcardSymbol);
  ASSERT_EQ(q.node(0).literals.size(), 2u);
  EXPECT_TRUE(q.node(0).literals[1].is_wildcard());
}

TEST(QueryTextTest, ParsesCategoricalLiteral) {
  Schema schema;
  const std::string text =
      "wqe-query v1\nfocus 0\nnode 0 Brand\nlit 0 name = str Samsung\n";
  auto parsed = QueryText::Parse(text, &schema);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().node(0).literals[0].constant.is_str());
}

TEST(QueryTextTest, RejectsMissingHeader) {
  Schema schema;
  EXPECT_FALSE(QueryText::Parse("focus 0\n", &schema).ok());
}

TEST(QueryTextTest, RejectsBadEdge) {
  Schema schema;
  const std::string text =
      "wqe-query v1\nfocus 0\nnode 0 A\nedge 0 7 1\n";
  EXPECT_FALSE(QueryText::Parse(text, &schema).ok());
}

TEST(QueryTextTest, RejectsFocusOutOfRange) {
  Schema schema;
  EXPECT_FALSE(QueryText::Parse("wqe-query v1\nfocus 3\nnode 0 A\n", &schema).ok());
}

TEST(QueryTextTest, RejectsUnknownComparison) {
  Schema schema;
  const std::string text =
      "wqe-query v1\nfocus 0\nnode 0 A\nlit 0 x != num 1\n";
  EXPECT_FALSE(QueryText::Parse(text, &schema).ok());
}

}  // namespace
}  // namespace wqe
