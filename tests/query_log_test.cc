#include "obs/query_log.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "chase/report.h"
#include "chase/solve.h"
#include "gen/product_demo.h"
#include "obs/json.h"

namespace wqe {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() /
          (std::string("wqe_qlog_") + name + "_" +
           std::to_string(::getpid()) + ".jsonl"))
      .string();
}

obs::QueryLogRecord SampleRecord(int i) {
  obs::QueryLogRecord rec;
  rec.algorithm = "AnsW";
  rec.question_kind = "why";
  rec.query_text = "wqe-query v1\nfocus 0\nnode 0 Product\n";
  rec.exemplar_text = "wqe-exemplar v1\ntuple price=840.5\n";
  rec.graph_fingerprint = 0xdeadbeefcafe0000ull + i;
  rec.options_fingerprint = 0x1234567890abcdefull;
  rec.termination = "exhausted";
  rec.status = "OK";
  rec.elapsed_seconds = 0.25 + i;
  rec.num_answers = 2;
  rec.closeness = 0.75;
  rec.cl_star = 0.9;
  rec.satisfied = true;
  rec.answer_fingerprint = "fp;with\"quote";
  rec.steps = 100 + i;
  rec.evaluations = 90;
  rec.memo_hits = 10;
  rec.ops_generated = 40;
  rec.pruned = 5;
  rec.cache_hits = 7;
  rec.cache_misses = 3;
  rec.tables_built = 3;
  rec.store_hits = 1;
  rec.store_misses = 2;
  rec.ops.push_back({"RxB(u0->u1 2->3)", "relax", 1.5});
  rec.ops.push_back({"AddL(u1.name = \"x\")", "refine", 1.0});
  obs::PhaseStat phase;
  phase.name = "chase.evaluate";
  phase.count = 90;
  phase.wall_seconds = 0.2;
  phase.self_seconds = 0.1;
  phase.cpu_seconds = 0.19;
  rec.phases.push_back(phase);
  return rec;
}

TEST(QueryLogRecordTest, JsonRoundTripPreservesEveryField) {
  const obs::QueryLogRecord rec = SampleRecord(1);
  auto parsed = obs::ParseJson(rec.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto back = obs::QueryLogRecord::FromJson(parsed.value());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  const obs::QueryLogRecord& r = back.value();
  EXPECT_EQ(r.algorithm, rec.algorithm);
  EXPECT_EQ(r.question_kind, rec.question_kind);
  // The replayable-trace fields round-trip with their embedded newlines —
  // the replay driver re-parses them via QueryText/ExemplarText verbatim.
  EXPECT_EQ(r.query_text, rec.query_text);
  EXPECT_EQ(r.exemplar_text, rec.exemplar_text);
  EXPECT_EQ(r.graph_fingerprint, rec.graph_fingerprint);
  EXPECT_EQ(r.options_fingerprint, rec.options_fingerprint);
  EXPECT_EQ(r.termination, rec.termination);
  EXPECT_EQ(r.status, rec.status);
  EXPECT_DOUBLE_EQ(r.elapsed_seconds, rec.elapsed_seconds);
  EXPECT_EQ(r.num_answers, rec.num_answers);
  EXPECT_DOUBLE_EQ(r.closeness, rec.closeness);
  EXPECT_DOUBLE_EQ(r.cl_star, rec.cl_star);
  EXPECT_EQ(r.satisfied, rec.satisfied);
  EXPECT_EQ(r.answer_fingerprint, rec.answer_fingerprint);
  EXPECT_EQ(r.steps, rec.steps);
  EXPECT_EQ(r.evaluations, rec.evaluations);
  EXPECT_EQ(r.memo_hits, rec.memo_hits);
  EXPECT_EQ(r.ops_generated, rec.ops_generated);
  EXPECT_EQ(r.pruned, rec.pruned);
  EXPECT_EQ(r.cache_hits, rec.cache_hits);
  EXPECT_EQ(r.cache_misses, rec.cache_misses);
  EXPECT_EQ(r.tables_built, rec.tables_built);
  EXPECT_EQ(r.store_hits, rec.store_hits);
  EXPECT_EQ(r.store_misses, rec.store_misses);
  ASSERT_EQ(r.ops.size(), 2u);
  EXPECT_EQ(r.ops[0].text, rec.ops[0].text);
  EXPECT_EQ(r.ops[0].kind, "relax");
  EXPECT_DOUBLE_EQ(r.ops[0].cost, 1.5);
  EXPECT_EQ(r.ops[1].text, rec.ops[1].text);
  ASSERT_EQ(r.phases.size(), 1u);
  EXPECT_EQ(r.phases[0].name, "chase.evaluate");
  EXPECT_EQ(r.phases[0].count, 90u);
  EXPECT_DOUBLE_EQ(r.phases[0].self_seconds, 0.1);
}

TEST(QueryLogRecordTest, ParseHexFingerprintRoundTripsAllWidths) {
  for (const uint64_t fp :
       {0ull, 1ull, 0xdeadbeefcafe1234ull, 0xffffffffffffffffull}) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(fp));
    uint64_t parsed = 0;
    ASSERT_TRUE(obs::ParseHexFingerprint(buf, &parsed).ok());
    EXPECT_EQ(parsed, fp);
  }
  // Short (unpadded) and uppercase forms parse too.
  uint64_t parsed = 0;
  ASSERT_TRUE(obs::ParseHexFingerprint("aB3", &parsed).ok());
  EXPECT_EQ(parsed, 0xab3u);
}

TEST(QueryLogRecordTest, ParseHexFingerprintRejectsWhatStrtoullAccepts) {
  uint64_t out = 0;
  // Each of these is silently "parsed" by strtoull(..., nullptr, 16).
  EXPECT_FALSE(obs::ParseHexFingerprint("", &out).ok());
  EXPECT_FALSE(obs::ParseHexFingerprint(" 1f", &out).ok());     // whitespace
  EXPECT_FALSE(obs::ParseHexFingerprint("-1", &out).ok());      // sign wrap
  EXPECT_FALSE(obs::ParseHexFingerprint("+1", &out).ok());
  EXPECT_FALSE(obs::ParseHexFingerprint("0x1f", &out).ok());    // prefix
  EXPECT_FALSE(obs::ParseHexFingerprint("1fg", &out).ok());     // junk tail
  EXPECT_FALSE(obs::ParseHexFingerprint("12345678901234567", &out).ok());
  EXPECT_FALSE(obs::ParseHexFingerprint("ffffffffffffffffff", &out).ok());
}

TEST(QueryLogRecordTest, FromJsonRejectsMalformedFingerprint) {
  const obs::QueryLogRecord rec = SampleRecord(1);
  std::string json = rec.ToJson();
  const std::string good = "\"graph_fingerprint\":\"deadbeefcafe0001\"";
  const size_t pos = json.find(good);
  ASSERT_NE(pos, std::string::npos) << json;
  json.replace(pos, good.size(), "\"graph_fingerprint\":\"0xdeadbeef\"");
  auto parsed = obs::ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto back = obs::QueryLogRecord::FromJson(parsed.value());
  EXPECT_FALSE(back.ok());
}

TEST(QueryLogRecordTest, FromJsonToleratesAbsentFingerprints) {
  auto parsed = obs::ParseJson("{\"algorithm\":\"AnsW\"}");
  ASSERT_TRUE(parsed.ok());
  auto back = obs::QueryLogRecord::FromJson(parsed.value());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().graph_fingerprint, 0u);
  EXPECT_EQ(back.value().options_fingerprint, 0u);
}

TEST(QueryLogTest, AppendAndLoad) {
  const std::string path = TempPath("append");
  std::remove(path.c_str());
  {
    auto log = obs::QueryLog::Open(path);
    ASSERT_TRUE(log.ok());
    for (int i = 0; i < 3; ++i) {
      EXPECT_TRUE(log.value()->Append(SampleRecord(i)));
    }
    EXPECT_EQ(log.value()->records_written(), 3u);
  }
  auto loaded = obs::QueryLog::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().skipped_lines, 0u);
  ASSERT_EQ(loaded.value().records.size(), 3u);
  EXPECT_EQ(loaded.value().records[2].steps, 102u);
  std::remove(path.c_str());
}

TEST(QueryLogTest, OpenAppendsToExistingLog) {
  const std::string path = TempPath("reopen");
  std::remove(path.c_str());
  {
    auto log = obs::QueryLog::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log.value()->Append(SampleRecord(0)));
  }
  {
    auto log = obs::QueryLog::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log.value()->Append(SampleRecord(1)));
  }
  auto loaded = obs::QueryLog::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().records.size(), 2u);
  std::remove(path.c_str());
}

TEST(QueryLogTest, ConcurrentAppendsProduceWholeLines) {
  const std::string path = TempPath("concurrent");
  std::remove(path.c_str());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  {
    auto log = obs::QueryLog::Open(path);
    ASSERT_TRUE(log.ok());
    obs::QueryLog* sink = log.value().get();
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([sink, t] {
        for (int i = 0; i < kPerThread; ++i) {
          ASSERT_TRUE(sink->Append(SampleRecord(t * kPerThread + i)));
        }
      });
    }
    for (std::thread& w : workers) w.join();
    EXPECT_EQ(sink->records_written(),
              static_cast<uint64_t>(kThreads * kPerThread));
  }
  auto loaded = obs::QueryLog::Load(path);
  ASSERT_TRUE(loaded.ok());
  // Every line parses — interleaved writers never tear a record.
  EXPECT_EQ(loaded.value().skipped_lines, 0u);
  EXPECT_EQ(loaded.value().records.size(),
            static_cast<size_t>(kThreads * kPerThread));
  std::remove(path.c_str());
}

TEST(QueryLogTest, LoadToleratesTornFinalLine) {
  const std::string path = TempPath("torn");
  std::remove(path.c_str());
  {
    auto log = obs::QueryLog::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log.value()->Append(SampleRecord(0)));
    ASSERT_TRUE(log.value()->Append(SampleRecord(1)));
  }
  // Simulate a crash mid-write: append half a record with no newline.
  {
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const std::string partial = SampleRecord(2).ToJson().substr(0, 40);
    std::fwrite(partial.data(), 1, partial.size(), f);
    std::fclose(f);
  }
  auto loaded = obs::QueryLog::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().records.size(), 2u);
  EXPECT_EQ(loaded.value().skipped_lines, 1u);
  std::remove(path.c_str());
}

TEST(QueryLogTest, LoadOfMissingFileIsNotFound) {
  auto loaded = obs::QueryLog::Load(TempPath("missing_never_created"));
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), Status::Code::kNotFound);
}

// ---- end-to-end: Solve appends, and the explain output is deterministic ----

TEST(QueryLogSolveTest, SolveWithContextAppendsOneRecordPerSolve) {
  const std::string path = TempPath("solve");
  std::remove(path.c_str());
  ProductDemo demo;
  auto log = obs::QueryLog::Open(path);
  ASSERT_TRUE(log.ok());

  ChaseOptions opts;
  opts.query_log = log.value().get();
  WhyQuestion w{demo.Query(), demo.MakeExemplar()};
  {
    ChaseContext ctx(demo.graph(), w, opts);
    ChaseResult result = SolveWithContext(ctx, Algorithm::kAnsW);
    ASSERT_TRUE(result.found());
  }
  {
    ChaseContext ctx(demo.graph(), w, opts);
    (void)SolveWithContext(ctx, Algorithm::kAnsHeu);
  }
  EXPECT_EQ(log.value()->records_written(), 2u);

  auto loaded = obs::QueryLog::Load(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().records.size(), 2u);
  const obs::QueryLogRecord& first = loaded.value().records[0];
  EXPECT_EQ(first.algorithm, "AnsW");
  EXPECT_EQ(first.question_kind, "why");
  EXPECT_NE(first.graph_fingerprint, 0u);
  EXPECT_NE(first.options_fingerprint, 0u);
  EXPECT_EQ(first.termination, "exhausted");
  EXPECT_GT(first.steps, 0u);
  EXPECT_GT(first.evaluations, 0u);
  EXPECT_FALSE(first.ops.empty());
  EXPECT_FALSE(first.phases.empty());
  // Both solves saw the same graph and options.
  EXPECT_EQ(first.graph_fingerprint,
            loaded.value().records[1].graph_fingerprint);
  EXPECT_EQ(first.options_fingerprint,
            loaded.value().records[1].options_fingerprint);
  std::remove(path.c_str());
}

/// Golden check on the structural (time-independent) explain content for the
/// fixed ProductDemo instance: the applied operator sequence, kinds, and
/// counters are deterministic; wall-clock fields are not and stay unpinned.
TEST(QueryLogSolveTest, ExplainGoldenStructureForProductDemo) {
  ProductDemo demo;
  ChaseOptions opts;  // defaults: budget 3, the §7 setup
  WhyQuestion w{demo.Query(), demo.MakeExemplar()};
  ChaseContext ctx(demo.graph(), w, opts);
  ChaseResult result = SolveWithContext(ctx, Algorithm::kAnsW);
  ASSERT_TRUE(result.found());

  auto parsed =
      obs::ParseJson(ChaseReport::ExplainJson(ctx, result, Algorithm::kAnsW));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const obs::JsonValue& v = parsed.value();
  EXPECT_EQ(v.StringOr("algorithm", ""), "AnsW");
  EXPECT_EQ(v.StringOr("question_kind", ""), "why");
  EXPECT_EQ(v.StringOr("termination", ""), "exhausted");
  EXPECT_EQ(v.StringOr("status", ""), "OK");
  EXPECT_TRUE(v.BoolOr("satisfied", false));
  EXPECT_NEAR(v.NumberOr("closeness", 0), 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(v.NumberOr("cl_star", 0), 0.5, 1e-9);

  const obs::JsonValue* ops = v.Find("ops");
  ASSERT_NE(ops, nullptr);
  ASSERT_EQ(ops->items.size(), 2u);
  EXPECT_EQ(ops->items[0].StringOr("kind", ""), "relax");
  EXPECT_EQ(ops->items[0].StringOr("op", ""),
            "RxL(u0.price >= 840 -> price >= 795)");
  EXPECT_EQ(ops->items[1].StringOr("kind", ""), "refine");
  EXPECT_EQ(ops->items[1].StringOr("op", ""), "AddL(u2.name = Sprint)");

  const obs::JsonValue* phases = v.Find("phases");
  ASSERT_NE(phases, nullptr);
  EXPECT_FALSE(phases->items.empty());

  // The human-readable rendering carries the same facts.
  const std::string text =
      ChaseReport::ExplainText(ctx, result, Algorithm::kAnsW);
  EXPECT_NE(text.find("Explain (AnsW, why)"), std::string::npos) << text;
  EXPECT_NE(text.find("RxL(u0.price >= 840 -> price >= 795)"),
            std::string::npos);
  EXPECT_NE(text.find("AddL(u2.name = Sprint)"), std::string::npos);
  EXPECT_NE(text.find("phases (self time):"), std::string::npos);
}

}  // namespace
}  // namespace wqe
