#include "workload/why_factory.h"

#include <gtest/gtest.h>

#include "gen/datasets.h"
#include "gen/synthetic.h"
#include "workload/metrics.h"
#include "workload/suite.h"

namespace wqe {
namespace {

class WorkloadFixture : public ::testing::Test {
 protected:
  WorkloadFixture() : g_(GenerateGraph(ImdbLike(0.05))) {}

  Graph g_;
};

TEST_F(WorkloadFixture, GroundTruthQueriesHaveAnswersInWindow) {
  DistanceIndex dist(g_);
  Matcher matcher(g_, &dist);
  size_t generated = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    QueryGenOptions opts;
    opts.seed = seed;
    opts.num_edges = 2;
    auto q = GenerateGroundTruthQuery(g_, matcher, opts);
    if (!q.has_value()) continue;
    ++generated;
    const auto answer = matcher.Answer(*q);
    EXPECT_GE(answer.size(), opts.min_answers);
    EXPECT_LE(answer.size(), opts.max_answers);
  }
  EXPECT_GT(generated, 0u);
}

TEST_F(WorkloadFixture, ForcedShapesAreRespected) {
  DistanceIndex dist(g_);
  Matcher matcher(g_, &dist);
  for (QueryShape shape :
       {QueryShape::kStar, QueryShape::kChain, QueryShape::kTree}) {
    size_t ok = 0;
    for (uint64_t seed = 1; seed <= 12 && ok == 0; ++seed) {
      QueryGenOptions opts;
      opts.seed = seed * 31;
      opts.shape = shape;
      opts.num_edges = 3;
      opts.min_answers = 1;
      auto q = GenerateGroundTruthQuery(g_, matcher, opts);
      if (!q.has_value()) continue;
      ++ok;
      if (shape == QueryShape::kStar) {
        EXPECT_EQ(q->Shape(), QueryShape::kStar);
      } else if (shape == QueryShape::kChain) {
        // 3-edge chains classify as chain.
        EXPECT_EQ(q->Shape(), QueryShape::kChain);
      }
    }
    EXPECT_GT(ok, 0u) << "no query generated for shape "
                      << QueryShapeName(shape);
  }
}

TEST_F(WorkloadFixture, DisturbInjectsApplicableOps) {
  DistanceIndex dist(g_);
  Matcher matcher(g_, &dist);
  ActiveDomains adom(g_);
  QueryGenOptions qopts;
  qopts.seed = 5;
  auto gt = GenerateGroundTruthQuery(g_, matcher, qopts);
  ASSERT_TRUE(gt.has_value());

  DisturbOptions dopts;
  dopts.num_ops = 4;
  Disturbed d = DisturbQuery(g_, adom, *gt, dopts);
  EXPECT_GT(d.injected.size(), 0u);
  EXPECT_LE(d.injected.size(), 4u);
  // Replaying the injected sequence on the ground truth reproduces Q.
  PatternQuery replay = *gt;
  ASSERT_TRUE(d.injected.ApplyAll(&replay, dopts.max_bound));
  EXPECT_EQ(replay.Fingerprint(), d.query.Fingerprint());
}

TEST_F(WorkloadFixture, BenchCasesFollowProtocol) {
  WhyFactoryOptions opts;
  opts.query.num_edges = 2;
  auto cases = MakeBenchCases(g_, 5, opts);
  ASSERT_GE(cases.size(), 3u);
  for (const BenchCase& c : cases) {
    EXPECT_FALSE(c.gt_answer.empty());
    EXPECT_FALSE(c.question.exemplar.tuples().empty());
    EXPECT_LE(c.question.exemplar.tuples().size(), opts.max_tuples);
    EXPECT_TRUE(c.question.exemplar.constraints().empty());  // C = ∅ (§7)
  }
}

TEST_F(WorkloadFixture, WhyEmptyCasesHaveEmptyAnswers) {
  WhyFactoryOptions opts;
  opts.query.num_edges = 2;
  auto cases = MakeWhyEmptyCases(g_, 3, opts);
  ASSERT_GE(cases.size(), 1u);
  for (const BenchCase& c : cases) {
    EXPECT_TRUE(c.q_answer.empty());
    EXPECT_FALSE(c.gt_answer.empty());
  }
}

TEST(MetricsTest, AnswerJaccard) {
  std::vector<NodeId> a = {1, 2, 3};
  std::vector<NodeId> b = {2, 3, 4};
  EXPECT_DOUBLE_EQ(AnswerJaccard(a, b), 0.5);
  EXPECT_DOUBLE_EQ(AnswerJaccard(a, a), 1.0);
  EXPECT_DOUBLE_EQ(AnswerJaccard(a, {}), 0.0);
  EXPECT_DOUBLE_EQ(AnswerJaccard({}, {}), 1.0);
}

TEST(MetricsTest, Precision) {
  std::vector<NodeId> answer = {1, 2, 3, 4};
  std::vector<NodeId> relevant = {2, 4, 9};
  EXPECT_DOUBLE_EQ(Precision(answer, relevant), 0.5);
  EXPECT_DOUBLE_EQ(Precision({}, relevant), 0.0);
}

TEST(MetricsTest, NDCG) {
  // Perfect ranking.
  std::vector<double> perfect = {3, 2, 1};
  EXPECT_DOUBLE_EQ(NDCG(perfect, 3), 1.0);
  // Worst ranking of the same gains.
  std::vector<double> reversed = {1, 2, 3};
  EXPECT_LT(NDCG(reversed, 3), 1.0);
  EXPECT_GT(NDCG(reversed, 3), 0.0);
  // All-zero gains.
  std::vector<double> zeros = {0, 0, 0};
  EXPECT_DOUBLE_EQ(NDCG(zeros, 3), 0.0);
}

TEST(MetricsTest, AggregateTracksMinMaxMean) {
  Aggregate agg;
  agg.Add(2);
  agg.Add(4);
  agg.Add(6);
  EXPECT_DOUBLE_EQ(agg.Mean(), 4);
  EXPECT_DOUBLE_EQ(agg.min, 2);
  EXPECT_DOUBLE_EQ(agg.max, 6);
  EXPECT_EQ(agg.count, 3u);
}

TEST_F(WorkloadFixture, ExperimentRunnerProducesSummaries) {
  WhyFactoryOptions opts;
  opts.query.num_edges = 1;
  opts.disturb.num_ops = 2;
  auto cases = MakeBenchCases(g_, 2, opts);
  ASSERT_FALSE(cases.empty());
  ExperimentRunner runner(g_, std::move(cases));

  ChaseOptions base;
  base.budget = 3;
  base.max_steps = 300;  // keep the unit test quick
  AlgoSummary summary = runner.Run(MakeAnsHeu(base, 2));
  EXPECT_EQ(summary.cases, runner.cases().size());
  EXPECT_GT(summary.seconds.Mean(), 0.0);
  EXPECT_GE(summary.delta.Mean(), 0.0);
  EXPECT_LE(summary.delta.Mean(), 1.0);
}

}  // namespace
}  // namespace wqe
