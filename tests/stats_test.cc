#include "graph/stats.h"

#include <gtest/gtest.h>

#include "gen/datasets.h"
#include "gen/product_demo.h"
#include "gen/synthetic.h"

namespace wqe {
namespace {

TEST(StatsTest, ProductDemoCounts) {
  ProductDemo demo;
  GraphStats s = ComputeStats(demo.graph());
  EXPECT_EQ(s.num_nodes, demo.graph().num_nodes());
  EXPECT_EQ(s.num_edges, demo.graph().num_edges());
  EXPECT_EQ(s.num_labels, 5u);  // Cellphone, Brand, Carrier, Accessory, Sensor
  EXPECT_GT(s.avg_attrs_per_node, 0);
  EXPECT_EQ(s.isolated_nodes, 0u);
}

TEST(StatsTest, LabelHistogramSortedDescending) {
  ProductDemo demo;
  GraphStats s = ComputeStats(demo.graph());
  ASSERT_FALSE(s.label_histogram.empty());
  EXPECT_EQ(s.label_histogram[0].first, "Cellphone");
  EXPECT_EQ(s.label_histogram[0].second, 6u);
  for (size_t i = 1; i < s.label_histogram.size(); ++i) {
    EXPECT_GE(s.label_histogram[i - 1].second, s.label_histogram[i].second);
  }
}

TEST(StatsTest, DegreeDecilesMonotone) {
  Graph g = GenerateGraph(ImdbLike(0.05));
  GraphStats s = ComputeStats(g);
  ASSERT_EQ(s.out_degree_deciles.size(), 11u);
  for (size_t i = 1; i < s.out_degree_deciles.size(); ++i) {
    EXPECT_GE(s.out_degree_deciles[i], s.out_degree_deciles[i - 1]);
  }
  EXPECT_EQ(s.out_degree_deciles.back(), s.max_out_degree);
}

TEST(StatsTest, EmptyGraph) {
  Graph g;
  g.Finalize();
  GraphStats s = ComputeStats(g);
  EXPECT_EQ(s.num_nodes, 0u);
  EXPECT_EQ(s.num_labels, 0u);
  EXPECT_TRUE(s.out_degree_deciles.empty());
}

TEST(StatsTest, ToStringMentionsKeyNumbers) {
  ProductDemo demo;
  const std::string text = ComputeStats(demo.graph()).ToString();
  EXPECT_NE(text.find("nodes=11"), std::string::npos);
  EXPECT_NE(text.find("Cellphone=6"), std::string::npos);
}

TEST(StatsTest, HeavyTailVisibleInPresets) {
  Graph g = GenerateGraph(WatDivLike(0.1));
  GraphStats s = ComputeStats(g);
  // Preferential attachment: the max in-degree dwarfs the average.
  EXPECT_GT(static_cast<double>(s.max_in_degree), 5 * s.avg_out_degree);
}

}  // namespace
}  // namespace wqe
