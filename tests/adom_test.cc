#include "graph/adom.h"

#include <gtest/gtest.h>

namespace wqe {
namespace {

Graph PriceGraph() {
  Graph g;
  for (double p : {840.0, 950.0, 790.0, 795.0, 840.0, 700.0}) {
    NodeId v = g.AddNode("Phone");
    g.SetNum(v, "price", p);
  }
  NodeId c = g.AddNode("Carrier");
  g.SetStr(c, "name", "Sprint");
  NodeId c2 = g.AddNode("Carrier");
  g.SetStr(c2, "name", "ATT");
  g.Finalize();
  return g;
}

TEST(AdomTest, DistinctSortedNumericValues) {
  Graph g = PriceGraph();
  ActiveDomains adom(g);
  const AttrId price = g.schema().LookupAttr("price");
  const auto& vals = adom.NumValues(price);
  ASSERT_EQ(vals.size(), 5u);  // 840 deduplicated
  EXPECT_DOUBLE_EQ(vals.front(), 700);
  EXPECT_DOUBLE_EQ(vals.back(), 950);
}

TEST(AdomTest, RangeIsMaxMinusMin) {
  Graph g = PriceGraph();
  ActiveDomains adom(g);
  EXPECT_DOUBLE_EQ(adom.Range(g.schema().LookupAttr("price")), 250);
}

TEST(AdomTest, CategoricalValues) {
  Graph g = PriceGraph();
  ActiveDomains adom(g);
  const AttrId name = g.schema().LookupAttr("name");
  EXPECT_EQ(adom.StrValues(name).size(), 2u);
  EXPECT_EQ(adom.DomainSize(name), 2u);
}

TEST(AdomTest, UnknownAttrHasMinRange) {
  Graph g = PriceGraph();
  ActiveDomains adom(g);
  EXPECT_DOUBLE_EQ(adom.Range(9999), ActiveDomains::kMinRange);
  EXPECT_TRUE(adom.NumValues(9999).empty());
}

TEST(AdomTest, LargestBelow) {
  std::vector<double> vals = {700, 790, 795, 840, 950};
  double out = 0;
  EXPECT_TRUE(ActiveDomains::LargestBelow(vals, 840, &out));
  EXPECT_DOUBLE_EQ(out, 795);
  EXPECT_TRUE(ActiveDomains::LargestBelow(vals, 10000, &out));
  EXPECT_DOUBLE_EQ(out, 950);
  EXPECT_FALSE(ActiveDomains::LargestBelow(vals, 700, &out));
}

TEST(AdomTest, SmallestAbove) {
  std::vector<double> vals = {700, 790, 795, 840, 950};
  double out = 0;
  EXPECT_TRUE(ActiveDomains::SmallestAbove(vals, 795, &out));
  EXPECT_DOUBLE_EQ(out, 840);
  EXPECT_TRUE(ActiveDomains::SmallestAbove(vals, 0, &out));
  EXPECT_DOUBLE_EQ(out, 700);
  EXPECT_FALSE(ActiveDomains::SmallestAbove(vals, 950, &out));
}

TEST(AdomTest, SingleValueAttributeHasMinRangeNotZero) {
  Graph g;
  NodeId v = g.AddNode("A");
  g.SetNum(v, "k", 5);
  g.Finalize();
  ActiveDomains adom(g);
  EXPECT_GT(adom.Range(g.schema().LookupAttr("k")), 0);
}

}  // namespace
}  // namespace wqe
