#include "exemplar/tuple_pattern.h"

#include <gtest/gtest.h>

namespace wqe {
namespace {

TEST(TuplePatternTest, SetAndFindCells) {
  TuplePattern t;
  t.SetConstant(3, Value::Num(6.2));
  t.SetWildcard(1);
  ASSERT_NE(t.Find(3), nullptr);
  EXPECT_TRUE(t.Find(3)->is_constant());
  ASSERT_NE(t.Find(1), nullptr);
  EXPECT_FALSE(t.Find(1)->is_constant());
  EXPECT_EQ(t.Find(2), nullptr);
}

TEST(TuplePatternTest, CellsStaySortedByAttr) {
  TuplePattern t;
  t.SetConstant(9, Value::Num(1));
  t.SetConstant(2, Value::Num(2));
  t.SetConstant(5, Value::Num(3));
  ASSERT_EQ(t.num_cells(), 3u);
  EXPECT_EQ(t.cells()[0].attr, 2u);
  EXPECT_EQ(t.cells()[1].attr, 5u);
  EXPECT_EQ(t.cells()[2].attr, 9u);
}

TEST(TuplePatternTest, SetOverwrites) {
  TuplePattern t;
  t.SetConstant(1, Value::Num(5));
  t.SetConstant(1, Value::Num(9));
  EXPECT_EQ(t.num_cells(), 1u);
  EXPECT_DOUBLE_EQ(t.Find(1)->constant.num(), 9);
  t.SetWildcard(1);
  EXPECT_FALSE(t.Find(1)->is_constant());
}

TEST(TuplePatternTest, FromNodeCapturesAllAttributes) {
  Graph g;
  NodeId v = g.AddNode("Phone");
  g.SetNum(v, "price", 840);
  g.SetStr(v, "brand", "Samsung");
  g.Finalize();
  TuplePattern t = TuplePattern::FromNode(g, v);
  EXPECT_EQ(t.num_cells(), 2u);
  const AttrId price = g.schema().LookupAttr("price");
  ASSERT_NE(t.Find(price), nullptr);
  EXPECT_DOUBLE_EQ(t.Find(price)->constant.num(), 840);
}

TEST(TuplePatternTest, ToStringShowsWildcards) {
  Schema schema;
  TuplePattern t;
  t.SetConstant(schema.InternAttr("display"), Value::Num(6.2));
  t.SetWildcard(schema.InternAttr("storage"));
  const std::string s = t.ToString(schema);
  EXPECT_NE(s.find("display=6.2"), std::string::npos);
  EXPECT_NE(s.find("storage=_"), std::string::npos);
}

}  // namespace
}  // namespace wqe
