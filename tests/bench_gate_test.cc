#include "workload/bench_gate.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <unistd.h>

namespace wqe {
namespace {

using gate::BenchMeasurement;
using gate::CompareToBaseline;
using gate::GateOutcome;
using gate::GateRun;
using gate::GateThresholds;

BenchMeasurement MakeBench(const std::string& name) {
  BenchMeasurement b;
  b.name = name;
  b.repeats = 5;
  b.min_wall_s = 0.10;
  b.median_wall_s = 0.11;
  b.p95_wall_s = 0.13;
  b.peak_rss_bytes = 100ll << 20;
  b.closeness = 0.8;
  b.satisfied_frac = 1.0;
  b.delta = 0.9;
  b.latency_p50_ns = 1e7;
  b.latency_p90_ns = 4e7;
  b.latency_p99_ns = 8e7;
  return b;
}

GateRun MakeRun(const std::string& label) {
  GateRun run;
  run.label = label;
  run.sampler_overhead_pct = 0.05;
  run.benches.push_back(MakeBench("fig10a_quick"));
  run.benches.push_back(MakeBench("fig12c_quick"));
  return run;
}

TEST(GateComparatorTest, MissingBaselinePassesWithWarning) {
  const GateRun current = MakeRun("pr");
  const GateOutcome out = CompareToBaseline(current, nullptr, GateThresholds());
  EXPECT_TRUE(out.pass);
  EXPECT_TRUE(out.regressions.empty());
  ASSERT_EQ(out.warnings.size(), 1u);
  EXPECT_NE(out.warnings[0].find("no baseline"), std::string::npos);
}

TEST(GateComparatorTest, WithinNoisePasses) {
  const GateRun baseline = MakeRun("base");
  GateRun current = MakeRun("pr");
  // 1.3x wall, +10 MiB RSS, tiny quality wiggle — all inside the thresholds.
  current.benches[0].min_wall_s *= 1.3;
  current.benches[0].peak_rss_bytes += 10ll << 20;
  current.benches[0].closeness -= 0.01;
  current.benches[0].latency_p99_ns *= 2.0;  // one log-bucket of wiggle
  const GateOutcome out =
      CompareToBaseline(current, &baseline, GateThresholds());
  EXPECT_TRUE(out.pass) << (out.regressions.empty()
                                ? ""
                                : out.regressions[0].ToString());
  EXPECT_TRUE(out.warnings.empty());
}

TEST(GateComparatorTest, WallRegressionFails) {
  const GateRun baseline = MakeRun("base");
  GateRun current = MakeRun("pr");
  current.benches[0].min_wall_s *= 2.0;  // 0.20 > 0.10 * 1.6 + 0.025
  const GateOutcome out =
      CompareToBaseline(current, &baseline, GateThresholds());
  EXPECT_FALSE(out.pass);
  ASSERT_EQ(out.regressions.size(), 1u);
  EXPECT_EQ(out.regressions[0].bench, "fig10a_quick");
  EXPECT_EQ(out.regressions[0].metric, "min_wall_s");
  // The finding renders with its numbers.
  EXPECT_NE(out.regressions[0].ToString().find("min_wall_s"),
            std::string::npos);
}

TEST(GateComparatorTest, SmallBenchIsProtectedByAbsoluteSlack) {
  // A microsecond-scale bench doubling stays under the 25 ms slack floor:
  // ratio-only gating would page on scheduler noise.
  GateRun baseline = MakeRun("base");
  baseline.benches[1].min_wall_s = 0.0005;
  GateRun current = MakeRun("pr");
  current.benches[1].min_wall_s = 0.0015;  // 3x, but +1 ms in absolute terms
  const GateOutcome out =
      CompareToBaseline(current, &baseline, GateThresholds());
  EXPECT_TRUE(out.pass);
}

TEST(GateComparatorTest, RssRegressionFails) {
  const GateRun baseline = MakeRun("base");
  GateRun current = MakeRun("pr");
  current.benches[0].peak_rss_bytes = 200ll << 20;  // 2x + past the slack
  const GateOutcome out =
      CompareToBaseline(current, &baseline, GateThresholds());
  EXPECT_FALSE(out.pass);
  ASSERT_EQ(out.regressions.size(), 1u);
  EXPECT_EQ(out.regressions[0].metric, "peak_rss_bytes");
}

TEST(GateComparatorTest, RssNotGatedWhenUnavailable) {
  GateRun baseline = MakeRun("base");
  baseline.benches[0].peak_rss_bytes = 0;  // platform without /proc
  GateRun current = MakeRun("pr");
  current.benches[0].peak_rss_bytes = 500ll << 20;
  EXPECT_TRUE(CompareToBaseline(current, &baseline, GateThresholds()).pass);
}

TEST(GateComparatorTest, QualityDropFails) {
  const GateRun baseline = MakeRun("base");
  GateRun current = MakeRun("pr");
  current.benches[0].closeness = 0.7;  // -0.1 > the 0.02 allowance
  GateOutcome out = CompareToBaseline(current, &baseline, GateThresholds());
  EXPECT_FALSE(out.pass);
  ASSERT_EQ(out.regressions.size(), 1u);
  EXPECT_EQ(out.regressions[0].metric, "closeness");

  current = MakeRun("pr");
  current.benches[1].satisfied_frac = 0.5;  // half the cases stopped satisfying
  out = CompareToBaseline(current, &baseline, GateThresholds());
  EXPECT_FALSE(out.pass);
  EXPECT_EQ(out.regressions[0].metric, "satisfied_frac");
}

TEST(GateComparatorTest, LatencyTailBlowupFails) {
  const GateRun baseline = MakeRun("base");
  GateRun current = MakeRun("pr");
  current.benches[0].latency_p99_ns = 8e8;  // 10x the baseline tail
  const GateOutcome out =
      CompareToBaseline(current, &baseline, GateThresholds());
  EXPECT_FALSE(out.pass);
  ASSERT_EQ(out.regressions.size(), 1u);
  EXPECT_EQ(out.regressions[0].metric, "latency_p99_ns");
}

TEST(GateComparatorTest, NewBenchIsRecordedNotGated) {
  const GateRun baseline = MakeRun("base");
  GateRun current = MakeRun("pr");
  BenchMeasurement extra = MakeBench("fig12a_quick");
  extra.min_wall_s = 99.0;  // would fail every threshold if it were gated
  current.benches.push_back(extra);
  const GateOutcome out =
      CompareToBaseline(current, &baseline, GateThresholds());
  EXPECT_TRUE(out.pass);
  ASSERT_EQ(out.warnings.size(), 1u);
  EXPECT_NE(out.warnings[0].find("fig12a_quick"), std::string::npos);
  EXPECT_NE(out.warnings[0].find("not gated"), std::string::npos);
}

TEST(GateComparatorTest, DroppedBenchWarns) {
  const GateRun baseline = MakeRun("base");
  GateRun current = MakeRun("pr");
  current.benches.pop_back();
  const GateOutcome out =
      CompareToBaseline(current, &baseline, GateThresholds());
  EXPECT_TRUE(out.pass);
  ASSERT_EQ(out.warnings.size(), 1u);
  EXPECT_NE(out.warnings[0].find("was not run"), std::string::npos);
}

TEST(GateRunJsonTest, RoundTripsThroughJson) {
  const GateRun run = MakeRun("round-trip");
  auto back = gate::GateRunFromJson(gate::GateRunToJson(run));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  const GateRun& r = back.value();
  EXPECT_EQ(r.label, "round-trip");
  EXPECT_EQ(r.schema_version, run.schema_version);
  EXPECT_DOUBLE_EQ(r.sampler_overhead_pct, 0.05);
  ASSERT_EQ(r.benches.size(), 2u);
  EXPECT_EQ(r.benches[0].name, "fig10a_quick");
  EXPECT_EQ(r.benches[0].repeats, 5u);
  EXPECT_DOUBLE_EQ(r.benches[0].min_wall_s, 0.10);
  EXPECT_DOUBLE_EQ(r.benches[0].median_wall_s, 0.11);
  EXPECT_EQ(r.benches[0].peak_rss_bytes, 100ll << 20);
  EXPECT_DOUBLE_EQ(r.benches[0].latency_p99_ns, 8e7);
}

TEST(GateRunJsonTest, RejectsGarbageAndMissingBenches) {
  EXPECT_FALSE(gate::GateRunFromJson("not json").ok());
  EXPECT_FALSE(gate::GateRunFromJson("[]").ok());
  EXPECT_FALSE(gate::GateRunFromJson("{\"label\":\"x\"}").ok());
  EXPECT_FALSE(
      gate::GateRunFromJson("{\"label\":\"x\",\"benches\":[{}]}").ok());
}

TEST(GateRunJsonTest, LoadDistinguishesMissingFromCorrupt) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("wqe_gate_" + std::to_string(::getpid())))
          .string();
  std::filesystem::create_directories(dir);
  const std::string missing = dir + "/nope.json";
  auto r = gate::LoadGateRun(missing);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kNotFound);

  const std::string corrupt = dir + "/corrupt.json";
  std::FILE* f = std::fopen(corrupt.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("{truncated", f);
  std::fclose(f);
  r = gate::LoadGateRun(corrupt);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kInvalidArgument);

  // Save/Load round trip.
  const std::string saved = dir + "/run.json";
  ASSERT_TRUE(gate::SaveGateRun(MakeRun("disk"), saved).ok());
  r = gate::LoadGateRun(saved);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().label, "disk");
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace wqe
