#include "graph/graph_io.h"

#include <gtest/gtest.h>

#include "gen/product_demo.h"

namespace wqe {
namespace {

TEST(GraphIoTest, RoundTripPreservesStructure) {
  ProductDemo demo;
  const std::string text = GraphIo::ToString(demo.graph());
  auto loaded = GraphIo::FromString(text);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Graph& g = loaded.value();
  EXPECT_EQ(g.num_nodes(), demo.graph().num_nodes());
  EXPECT_EQ(g.num_edges(), demo.graph().num_edges());
  // Attribute round trip.
  const AttrId price = g.schema().LookupAttr("price");
  ASSERT_NE(g.attr(demo.p(1), price), nullptr);
  EXPECT_DOUBLE_EQ(g.attr(demo.p(1), price)->num(), 840);
  EXPECT_EQ(g.name(demo.p(1)), "P1 S9+");
}

TEST(GraphIoTest, RejectsMissingHeader) {
  auto r = GraphIo::FromString("node\t0\tA\n");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kInvalidArgument);
}

TEST(GraphIoTest, RejectsNonSequentialNodeIds) {
  auto r = GraphIo::FromString("wqe-graph v1\nnode\t5\tA\n");
  EXPECT_FALSE(r.ok());
}

TEST(GraphIoTest, RejectsEdgeToUnknownNode) {
  auto r = GraphIo::FromString("wqe-graph v1\nnode\t0\tA\nedge\t0\t7\n");
  EXPECT_FALSE(r.ok());
}

TEST(GraphIoTest, RejectsBadAttrValue) {
  auto r = GraphIo::FromString(
      "wqe-graph v1\nnode\t0\tA\nattr\t0\tx\tnum\tnot-a-number\n");
  EXPECT_FALSE(r.ok());
}

TEST(GraphIoTest, SkipsCommentsAndBlankLines) {
  auto r = GraphIo::FromString(
      "wqe-graph v1\n# comment\n\nnode\t0\tA\nnode\t1\tB\nedge\t0\t1\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().num_nodes(), 2u);
  EXPECT_EQ(r.value().num_edges(), 1u);
}

TEST(GraphIoTest, SaveAndLoadFile) {
  ProductDemo demo;
  const std::string path = ::testing::TempDir() + "/wqe_graph_io_test.graph";
  ASSERT_TRUE(GraphIo::Save(demo.graph(), path).ok());
  auto loaded = GraphIo::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_nodes(), demo.graph().num_nodes());
}

TEST(GraphIoTest, LoadMissingFileIsNotFound) {
  auto r = GraphIo::Load("/nonexistent/path/to/graph");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kNotFound);
}

TEST(GraphIoTest, RejectsDuplicateNodeId) {
  auto r = GraphIo::FromString("wqe-graph v1\nnode\t0\tA\nnode\t0\tB\n");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kInvalidArgument);
}

TEST(GraphIoTest, RejectsNonNumericNodeId) {
  auto r = GraphIo::FromString("wqe-graph v1\nnode\tzero\tA\n");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kInvalidArgument);
}

TEST(GraphIoTest, RejectsTruncatedNodeLine) {
  auto r = GraphIo::FromString("wqe-graph v1\nnode\n");
  EXPECT_FALSE(r.ok());
}

TEST(GraphIoTest, RejectsTruncatedAttrLine) {
  auto r = GraphIo::FromString("wqe-graph v1\nnode\t0\tA\nattr\t0\tx\n");
  EXPECT_FALSE(r.ok());
}

TEST(GraphIoTest, RejectsTruncatedEdgeLine) {
  auto r = GraphIo::FromString("wqe-graph v1\nnode\t0\tA\nedge\t0\n");
  EXPECT_FALSE(r.ok());
}

TEST(GraphIoTest, RejectsAttrOnUnknownNode) {
  auto r = GraphIo::FromString("wqe-graph v1\nnode\t0\tA\nattr\t3\tx\tnum\t1\n");
  EXPECT_FALSE(r.ok());
}

TEST(GraphIoTest, RejectsUnknownValueKind) {
  auto r = GraphIo::FromString("wqe-graph v1\nnode\t0\tA\nattr\t0\tx\tblob\tz\n");
  EXPECT_FALSE(r.ok());
}

TEST(GraphIoTest, RejectsUnknownRecordType) {
  auto r = GraphIo::FromString("wqe-graph v1\nvertex\t0\tA\n");
  EXPECT_FALSE(r.ok());
}

TEST(GraphIoTest, RejectsNonFiniteNumericAttr) {
  auto r = GraphIo::FromString("wqe-graph v1\nnode\t0\tA\nattr\t0\tx\tnum\tinf\n");
  EXPECT_FALSE(r.ok());
  auto r2 = GraphIo::FromString("wqe-graph v1\nnode\t0\tA\nattr\t0\tx\tnum\tnan\n");
  EXPECT_FALSE(r2.ok());
}

TEST(GraphIoTest, ToleratesCrlfLineEndings) {
  auto r = GraphIo::FromString(
      "wqe-graph v1\r\nnode\t0\tA\r\nnode\t1\tB\r\nedge\t0\t1\r\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().num_nodes(), 2u);
  EXPECT_EQ(r.value().num_edges(), 1u);
}

TEST(GraphIoTest, ErrorsCarryLineNumbers) {
  auto r = GraphIo::FromString("wqe-graph v1\nnode\t0\tA\nedge\t0\t7\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("line 3"), std::string::npos)
      << r.status().ToString();
}

TEST(GraphIoTest, EdgeLabelsRoundTrip) {
  Graph g;
  g.AddNode("A");
  g.AddNode("B");
  g.AddEdge(0, 1, g.schema().InternEdgeLabel("likes"));
  g.Finalize();
  auto r = GraphIo::FromString(GraphIo::ToString(g));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().num_edges(), 1u);
}

}  // namespace
}  // namespace wqe
