#include "common/interner.h"

#include <gtest/gtest.h>

namespace wqe {
namespace {

TEST(InternerTest, EmptyStringIsWildcardZero) {
  Interner interner;
  EXPECT_EQ(interner.Intern(""), kWildcardSymbol);
  EXPECT_EQ(interner.Lookup(""), kWildcardSymbol);
  EXPECT_EQ(interner.size(), 1u);
}

TEST(InternerTest, AssignsSequentialIds) {
  Interner interner;
  EXPECT_EQ(interner.Intern("a"), 1u);
  EXPECT_EQ(interner.Intern("b"), 2u);
  EXPECT_EQ(interner.Intern("c"), 3u);
}

TEST(InternerTest, InternIsIdempotent) {
  Interner interner;
  const SymbolId a = interner.Intern("alpha");
  EXPECT_EQ(interner.Intern("alpha"), a);
  EXPECT_EQ(interner.size(), 2u);
}

TEST(InternerTest, NameRoundTrips) {
  Interner interner;
  const SymbolId id = interner.Intern("Cellphone");
  EXPECT_EQ(interner.Name(id), "Cellphone");
}

TEST(InternerTest, LookupMissingReturnsWildcard) {
  Interner interner;
  EXPECT_EQ(interner.Lookup("never-seen"), kWildcardSymbol);
  EXPECT_FALSE(interner.Contains("never-seen"));
}

TEST(InternerTest, ManySymbolsStayDistinct) {
  Interner interner;
  std::vector<SymbolId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(interner.Intern("sym" + std::to_string(i)));
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(interner.Name(ids[static_cast<size_t>(i)]), "sym" + std::to_string(i));
    EXPECT_EQ(interner.Lookup("sym" + std::to_string(i)), ids[static_cast<size_t>(i)]);
  }
}

}  // namespace
}  // namespace wqe
