#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "common/rng.h"
#include "common/status.h"
#include "common/timer.h"

namespace wqe {
namespace {

// ---- Status / Result.

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCodesCarryMessages) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_NE(s.ToString().find("bad input"), std::string::npos);
  EXPECT_EQ(Status::NotFound("x").code(), Status::Code::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), Status::Code::kOutOfRange);
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);

  Result<int> err = Status::NotFound("missing");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), Status::Code::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

// ---- Rng.

TEST(RngTest, DeterministicInSeed) {
  Rng a(7), b(7), c(8);
  bool all_equal = true, any_diff_c = false;
  for (int i = 0; i < 50; ++i) {
    const int64_t x = a.Int(0, 1000000);
    if (x != b.Int(0, 1000000)) all_equal = false;
    if (x != c.Int(0, 1000000)) any_diff_c = true;
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_c);
}

TEST(RngTest, IntInclusiveBounds) {
  Rng rng(1);
  std::set<int64_t> seen;
  for (int i = 0; i < 300; ++i) {
    const int64_t x = rng.Int(3, 5);
    EXPECT_GE(x, 3);
    EXPECT_LE(x, 5);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 3u);  // all three values occur
}

TEST(RngTest, WeightedRespectsWeights) {
  Rng rng(2);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.Weighted(weights), 1u);
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(3);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

// ---- Timer / Deadline.

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GE(t.ElapsedMillis(), 4.0);
  t.Reset();
  EXPECT_LT(t.ElapsedMillis(), 4.0);
}

TEST(DeadlineTest, DefaultNeverExpires) {
  Deadline d;
  EXPECT_FALSE(d.Expired());
}

TEST(DeadlineTest, ExpiresAfterDuration) {
  Deadline d = Deadline::After(0.0);
  EXPECT_TRUE(d.Expired());
  Deadline later = Deadline::After(60.0);
  EXPECT_FALSE(later.Expired());
}

}  // namespace
}  // namespace wqe
