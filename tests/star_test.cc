#include "match/star.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gen/product_demo.h"

namespace wqe {
namespace {

TEST(StarTest, ProductQueryDecomposesToOneFocusStar) {
  ProductDemo demo;
  PatternQuery q = demo.Query();
  auto stars = DecomposeStars(q);
  ASSERT_EQ(stars.size(), 1u);  // the focus is adjacent to every other node
  EXPECT_EQ(stars[0].center, q.focus());
  EXPECT_EQ(stars[0].spokes.size(), 3u);
  EXPECT_TRUE(stars[0].contains_focus);
}

TEST(StarTest, ChainNeedsMultipleStars) {
  PatternQuery q;
  for (int i = 0; i < 4; ++i) q.AddNode(static_cast<LabelId>(i + 1));
  q.SetFocus(0);
  q.AddEdge(0, 1, 1);
  q.AddEdge(1, 2, 1);
  q.AddEdge(2, 3, 2);
  auto stars = DecomposeStars(q);
  EXPECT_GE(stars.size(), 2u);
}

TEST(StarTest, AugmentedEdgeLabelIsQueryDistance) {
  PatternQuery q;
  for (int i = 0; i < 4; ++i) q.AddNode(static_cast<LabelId>(i + 1));
  q.SetFocus(0);
  q.AddEdge(0, 1, 1);
  q.AddEdge(1, 2, 2);
  q.AddEdge(2, 3, 1);
  auto stars = DecomposeStars(q);
  bool found_augmented = false;
  for (const StarQuery& s : stars) {
    if (!s.contains_focus) {
      found_augmented = true;
      EXPECT_EQ(s.aug_bound, q.QueryDistance(s.center, q.focus()));
    }
  }
  EXPECT_TRUE(found_augmented);
}

TEST(StarTest, FocusSpokeFlagged) {
  PatternQuery q;
  q.AddNode(1);
  q.AddNode(2);
  q.AddNode(3);
  q.SetFocus(2);
  // Center 1 will have spokes to 0 and 2 (the focus).
  q.AddEdge(1, 0, 1);
  q.AddEdge(1, 2, 1);
  auto stars = DecomposeStars(q);
  ASSERT_EQ(stars.size(), 1u);
  EXPECT_TRUE(stars[0].contains_focus);
  ASSERT_GE(stars[0].focus_spoke, 0);
  EXPECT_EQ(stars[0].spokes[static_cast<size_t>(stars[0].focus_spoke)].other, 2u);
}

TEST(StarTest, EdgeFreePatternYieldsSpokelessFocusStar) {
  PatternQuery q;
  q.AddNode(1);
  q.SetFocus(0);
  auto stars = DecomposeStars(q);
  ASSERT_EQ(stars.size(), 1u);
  EXPECT_EQ(stars[0].center, q.focus());
  EXPECT_TRUE(stars[0].spokes.empty());
}

TEST(StarTest, SignatureDistinguishesBoundsAndLiterals) {
  ProductDemo demo;
  PatternQuery a = demo.Query();
  PatternQuery b = demo.Query();
  const int e = b.FindEdge(b.focus(), 3);
  b.edge(static_cast<size_t>(e)).bound = 1;
  auto sa = DecomposeStars(a), sb = DecomposeStars(b);
  EXPECT_NE(sa[0].Signature(a), sb[0].Signature(b));

  PatternQuery c = demo.Query();
  c.node(c.focus()).literals[0].constant = Value::Num(790);
  auto sc = DecomposeStars(c);
  EXPECT_NE(sa[0].Signature(a), sc[0].Signature(c));
}

TEST(StarTest, SignatureStableUnderLiteralReorder) {
  ProductDemo demo;
  const Graph& g = demo.graph();
  PatternQuery a = demo.Query();
  a.AddLiteral(a.focus(), {g.schema().LookupAttr("ram"), CmpOp::kGe, Value::Num(4)});
  PatternQuery b = demo.Query();
  // Same literals, different insertion order.
  Literal price = b.node(b.focus()).literals[0];
  b.node(b.focus()).literals.clear();
  b.AddLiteral(b.focus(), {g.schema().LookupAttr("ram"), CmpOp::kGe, Value::Num(4)});
  b.AddLiteral(b.focus(), price);
  EXPECT_EQ(DecomposeStars(a)[0].Signature(a), DecomposeStars(b)[0].Signature(b));
}

// Property: every active node and edge is covered by at least one star
// (§2.3), on random tree/cyclic queries.
class StarCoverageTest : public ::testing::TestWithParam<int> {};

TEST_P(StarCoverageTest, CoversAllActiveNodesAndEdges) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 20; ++trial) {
    PatternQuery q;
    const size_t n = 2 + rng.Index(5);
    for (size_t i = 0; i < n; ++i) q.AddNode(static_cast<LabelId>(i + 1));
    // Random spanning tree + a few extra edges.
    for (size_t i = 1; i < n; ++i) {
      const QNodeId parent = static_cast<QNodeId>(rng.Index(i));
      if (rng.Chance(0.5)) {
        q.AddEdge(parent, static_cast<QNodeId>(i),
                  static_cast<uint32_t>(rng.Int(1, 2)));
      } else {
        q.AddEdge(static_cast<QNodeId>(i), parent,
                  static_cast<uint32_t>(rng.Int(1, 2)));
      }
    }
    for (int extra = 0; extra < 2; ++extra) {
      QNodeId a = static_cast<QNodeId>(rng.Index(n));
      QNodeId b = static_cast<QNodeId>(rng.Index(n));
      if (a != b && !q.HasEdgeEitherDirection(a, b)) q.AddEdge(a, b, 1);
    }
    q.SetFocus(static_cast<QNodeId>(rng.Index(n)));

    auto stars = DecomposeStars(q);
    std::vector<bool> node_covered(q.num_nodes(), false);
    std::vector<bool> edge_covered(q.num_edges(), false);
    for (const StarQuery& s : stars) {
      node_covered[s.center] = true;
      for (const StarSpoke& spoke : s.spokes) {
        node_covered[spoke.other] = true;
        for (size_t ei = 0; ei < q.num_edges(); ++ei) {
          const QueryEdge& e = q.edge(ei);
          const bool matches_out =
              spoke.outgoing && e.from == s.center && e.to == spoke.other;
          const bool matches_in =
              !spoke.outgoing && e.to == s.center && e.from == spoke.other;
          if (matches_out || matches_in) edge_covered[ei] = true;
        }
      }
    }
    for (QNodeId u : q.ActiveNodes()) {
      EXPECT_TRUE(node_covered[u]) << "node " << u << " uncovered";
    }
    for (size_t ei : q.ActiveEdges()) {
      EXPECT_TRUE(edge_covered[ei]) << "edge " << ei << " uncovered";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StarCoverageTest, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace wqe
