#include "match/view_cache.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "gen/product_demo.h"

namespace wqe {
namespace {

class ViewCacheFixture : public ::testing::Test {
 protected:
  ViewCacheFixture() : materializer_(demo_.graph()) {}

  // A real (non-empty) star table for the product query's focus star.
  std::shared_ptr<const StarTable> MakeTable() {
    PatternQuery q = demo_.Query();
    auto stars = DecomposeStars(q);
    return materializer_.Materialize(q, stars[0]);
  }

  ProductDemo demo_;
  StarMaterializer materializer_;
};

TEST_F(ViewCacheFixture, MissThenHit) {
  ViewCache cache;
  EXPECT_EQ(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  cache.Put("a", MakeTable());
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST_F(ViewCacheFixture, PutOverwrites) {
  ViewCache cache;
  auto t1 = MakeTable();
  auto t2 = MakeTable();
  cache.Put("a", t1);
  cache.Put("a", t2);
  EXPECT_EQ(cache.Get("a"), t2);
  EXPECT_EQ(cache.size(), 1u);
}

TEST_F(ViewCacheFixture, EntryCountTracksContents) {
  ViewCache cache;
  auto t = MakeTable();
  ASSERT_GT(t->EntryCount(), 0u);
  cache.Put("a", t);
  EXPECT_EQ(cache.entry_count(), t->EntryCount());
  cache.Put("b", MakeTable());
  EXPECT_EQ(cache.entry_count(), 2 * t->EntryCount());
}

TEST_F(ViewCacheFixture, ClearEmpties) {
  ViewCache cache;
  cache.Put("a", MakeTable());
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.Get("a"), nullptr);
}

TEST_F(ViewCacheFixture, LeastHitEvictionUnderPressure) {
  ViewCache::Options opts;
  opts.max_entries = 0;  // every insertion overflows: keep at most one entry
  ViewCache cache(opts);
  cache.Put("hot", MakeTable());
  for (int i = 0; i < 5; ++i) cache.Get("hot");
  cache.Put("cold", MakeTable());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_NE(cache.Get("hot"), nullptr);
  EXPECT_EQ(cache.Get("cold"), nullptr);
}

TEST_F(ViewCacheFixture, DecayDemotesStaleEntries) {
  ViewCache::Options opts;
  opts.max_entries = 0;
  opts.decay = 0.5;
  ViewCache cache(opts);
  cache.Put("old", MakeTable());
  for (int i = 0; i < 3; ++i) cache.Get("old");
  // Many unrelated accesses age "old"; a fresh entry then outranks it.
  for (int i = 0; i < 40; ++i) cache.Get("noise" + std::to_string(i));
  cache.Put("fresh", MakeTable());
  cache.Get("fresh");
  cache.Put("fresh2", MakeTable());
  EXPECT_EQ(cache.Get("old"), nullptr);
}

TEST_F(ViewCacheFixture, OversizedInsertDoesNotStripFittingEntries) {
  // A "whale" table bigger than the whole budget must not trigger a cascade
  // that evicts the small entries around it: once everything else fits,
  // further eviction is futile (the whale alone keeps the cache over budget).
  PatternQuery qb;
  QNodeId c = qb.AddNode(kWildcardSymbol);
  QNodeId l = qb.AddNode(kWildcardSymbol);
  qb.SetFocus(c);
  qb.AddEdge(c, l, 2);
  auto whale = materializer_.Materialize(qb, DecomposeStars(qb)[0]);

  auto small = MakeTable();
  const size_t small_ec = small->EntryCount();
  ASSERT_GT(small_ec, 0u);
  // As many small tables as fit strictly under the whale: budget = n tables,
  // so everything but the whale fits and eviction past it is futile.
  const size_t n = (whale->EntryCount() - 1) / small_ec;
  ASSERT_GE(n, 1u) << "fixture graph changed: whale no longer dominates";

  ViewCache::Options opts;
  opts.max_entries = n * small_ec;  // the n small tables fit exactly
  ViewCache cache(opts);
  cache.Put("s0", small);
  for (size_t i = 1; i < n; ++i) cache.Put("s" + std::to_string(i), MakeTable());
  ASSERT_EQ(cache.size(), n);
  cache.Put("whale", whale);
  EXPECT_EQ(cache.size(), n + 1);  // admitted, nothing stripped
  EXPECT_NE(cache.Get("s0"), nullptr);
  EXPECT_NE(cache.Get("whale"), nullptr);
  // Accounting never underflows.
  EXPECT_EQ(cache.entry_count(), n * small_ec + whale->EntryCount());
}

TEST_F(ViewCacheFixture, InsertBurstDoesNotAgeEntries) {
  // Insertion is not a clock event: a warm-start loading many persisted
  // tables must not decay the entries loaded first. With one hit, "a" scores
  // above any fresh insert, so it survives an arbitrarily long Put burst —
  // if Put advanced the decay tick, its score would rot below 1.0.
  ViewCache::Options opts;
  opts.max_entries = 0;
  opts.decay = 0.5;
  ViewCache cache(opts);
  cache.Put("a", MakeTable());
  cache.Get("a");
  for (int i = 0; i < 50; ++i) cache.Put("n" + std::to_string(i), MakeTable());
  EXPECT_NE(cache.Get("a"), nullptr);
}

TEST_F(ViewCacheFixture, ForEachVisitsEveryEntry) {
  ViewCache cache;
  cache.Put("a", MakeTable());
  cache.Put("b", MakeTable());
  std::set<std::string> seen;
  cache.ForEach([&](const std::string& sig,
                    const std::shared_ptr<const StarTable>& t) {
    EXPECT_NE(t, nullptr);
    seen.insert(sig);
  });
  EXPECT_EQ(seen, (std::set<std::string>{"a", "b"}));
}

TEST_F(ViewCacheFixture, HitMissCountersIndependent) {
  ViewCache cache;
  cache.Get("x");
  cache.Get("y");
  cache.Put("x", MakeTable());
  cache.Get("x");
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 1u);
}

}  // namespace
}  // namespace wqe
