#include "chase/multi_focus.h"

#include <gtest/gtest.h>

#include "gen/product_demo.h"

namespace wqe {
namespace {

class MultiFocusFixture : public ::testing::Test {
 protected:
  // Two foci on the product query: the cellphone (with the paper's
  // exemplar) and the carrier (desired: Sprint).
  MultiFocusQuestion Question() const {
    MultiFocusQuestion w;
    w.query = demo_.Query();
    w.foci = {0, 2};
    w.exemplars.push_back(demo_.MakeExemplar());
    std::vector<NodeId> sprint = {demo_.sprint()};
    w.exemplars.push_back(Exemplar::FromEntities(demo_.graph(), sprint));
    return w;
  }

  ChaseOptions Opts(double budget = 4) const {
    ChaseOptions o;
    o.budget = budget;
    return o;
  }

  ProductDemo demo_;
};

TEST_F(MultiFocusFixture, FindsJointlySatisfyingRewrite) {
  MultiFocusResult r = AnsWMultiFocus(demo_.graph(), Question(), Opts());
  ASSERT_TRUE(r.found());
  const MultiFocusAnswer& best = r.best();
  EXPECT_TRUE(best.satisfies_all);
  ASSERT_EQ(best.matches_per_focus.size(), 2u);
  ASSERT_EQ(best.closeness_per_focus.size(), 2u);
  EXPECT_NEAR(best.total_closeness,
              best.closeness_per_focus[0] + best.closeness_per_focus[1], 1e-9);
}

TEST_F(MultiFocusFixture, JointClosenessImprovesOverRoot) {
  MultiFocusQuestion w = Question();
  MultiFocusResult r = AnsWMultiFocus(demo_.graph(), w, Opts());
  ASSERT_TRUE(r.found());

  // Root joint closeness, computed independently.
  ChaseOptions opts = Opts();
  double root_total = 0;
  for (size_t i = 0; i < w.foci.size(); ++i) {
    WhyQuestion per{w.query, w.exemplars[i]};
    per.query.SetFocus(w.foci[i]);
    ChaseContext ctx(demo_.graph(), per, opts);
    root_total += ctx.root()->cl;
  }
  EXPECT_GT(r.best().total_closeness, root_total);
}

TEST_F(MultiFocusFixture, ClStarIsSumOfPerFocusOptima) {
  MultiFocusQuestion w = Question();
  MultiFocusResult r = AnsWMultiFocus(demo_.graph(), w, Opts());
  double expected = 0;
  ChaseOptions opts = Opts();
  for (size_t i = 0; i < w.foci.size(); ++i) {
    WhyQuestion per{w.query, w.exemplars[i]};
    per.query.SetFocus(w.foci[i]);
    ChaseContext ctx(demo_.graph(), per, opts);
    expected += ctx.cl_star();
  }
  EXPECT_NEAR(r.cl_star_total, expected, 1e-9);
  EXPECT_LE(r.best().total_closeness, r.cl_star_total + 1e-9);
}

TEST_F(MultiFocusFixture, BudgetRespected) {
  MultiFocusResult r = AnsWMultiFocus(demo_.graph(), Question(), Opts(2));
  ASSERT_TRUE(r.found());
  EXPECT_LE(r.best().cost, 2.0 + 1e-9);
}

TEST_F(MultiFocusFixture, SingleFocusDegeneratesToAnsWCloseness) {
  MultiFocusQuestion w;
  w.query = demo_.Query();
  w.foci = {0};
  w.exemplars = {demo_.MakeExemplar()};
  MultiFocusResult multi = AnsWMultiFocus(demo_.graph(), w, Opts());

  ChaseResult single = AnsW(demo_.graph(), demo_.Question(), Opts());
  ASSERT_TRUE(multi.found());
  ASSERT_TRUE(single.found());
  EXPECT_NEAR(multi.best().total_closeness, single.best().closeness, 1e-9);
}

TEST_F(MultiFocusFixture, RejectsMalformedInput) {
  MultiFocusQuestion w;
  w.query = demo_.Query();
  w.foci = {0, 2};
  w.exemplars = {demo_.MakeExemplar()};  // size mismatch
  MultiFocusResult r = AnsWMultiFocus(demo_.graph(), w, Opts());
  EXPECT_FALSE(r.found());
}

}  // namespace
}  // namespace wqe
