#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace wqe {
namespace {

TEST(ThreadPoolTest, HardwareThreadsIsNeverZero) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1u);
}

TEST(ThreadPoolTest, ResolveThreadsMapsZeroToHardware) {
  EXPECT_EQ(ResolveThreads(0), ThreadPool::HardwareThreads());
  EXPECT_EQ(ResolveThreads(1), 1u);
  EXPECT_EQ(ResolveThreads(7), 7u);
}

TEST(ThreadPoolTest, ParseThreadCountAcceptsAutoAndIntegers) {
  EXPECT_EQ(ParseThreadCount("auto").value(), 0u);
  EXPECT_EQ(ParseThreadCount("hw").value(), 0u);
  EXPECT_EQ(ParseThreadCount("1").value(), 1u);
  EXPECT_EQ(ParseThreadCount("16").value(), 16u);
  EXPECT_EQ(ParseThreadCount(std::to_string(kMaxThreads)).value(), kMaxThreads);
}

TEST(ThreadPoolTest, ParseThreadCountRejectsMalformedInput) {
  EXPECT_EQ(ParseThreadCount("").status().code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(ParseThreadCount("0").status().code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(ParseThreadCount("-4").status().code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(ParseThreadCount("abc").status().code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(ParseThreadCount("1e3").status().code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(ParseThreadCount("8 ").status().code(),
            Status::Code::kInvalidArgument);
  // An absurd value is out of range, not silently clamped.
  EXPECT_EQ(ParseThreadCount(std::to_string(kMaxThreads + 1)).status().code(),
            Status::Code::kOutOfRange);
  EXPECT_EQ(ParseThreadCount("99999999999999999999").status().code(),
            Status::Code::kInvalidArgument);
}

TEST(ThreadPoolTest, SharedPoolHasAtLeastThreeWorkers) {
  // Caller + workers >= 4 slots even on single-core machines, so the
  // cross-thread merge paths are genuinely exercised everywhere.
  EXPECT_GE(ThreadPool::Shared().workers(), 3u);
}

TEST(ThreadPoolTest, SubmitRunsEveryTask) {
  std::mutex mu;
  std::condition_variable cv;
  int count = 0;  // guarded by mu
  constexpr int kTasks = 64;
  {
    ThreadPool pool(2);
    for (int i = 0; i < kTasks; ++i) {
      pool.Submit([&] {
        std::lock_guard<std::mutex> lock(mu);
        if (++count == kTasks) cv.notify_one();
      });
    }
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return count == kTasks; });
  }  // pool joins its workers before mu/cv go away
  EXPECT_EQ(count, kTasks);
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsInline) {
  ThreadPool pool(0);
  int ran = 0;
  pool.Submit([&] { ++ran; });
  EXPECT_EQ(ran, 1);  // inline: done before Submit returns
}

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  for (const size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{9}}) {
    for (const size_t grain : {size_t{1}, size_t{3}, size_t{100}}) {
      constexpr size_t kN = 257;
      std::vector<std::atomic<int>> hits(kN);
      for (auto& h : hits) h.store(0);
      ParallelFor(threads, 0, kN, grain,
                  [&](size_t i, size_t) { hits[i].fetch_add(1); });
      for (size_t i = 0; i < kN; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "threads=" << threads
                                     << " grain=" << grain << " i=" << i;
      }
    }
  }
}

TEST(ParallelForTest, RespectsBeginOffsetAndEmptyRange) {
  std::vector<int> hits(10, 0);
  ParallelFor(4, 7, 10, 1, [&](size_t i, size_t) { ++hits[i]; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 3);
  EXPECT_EQ(hits[7] + hits[8] + hits[9], 3);

  bool called = false;
  ParallelFor(4, 5, 5, 1, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, SerialPathStaysOnCallerSlotAndThread) {
  const auto caller = std::this_thread::get_id();
  std::vector<size_t> slots;
  ParallelFor(1, 0, 16, 4, [&](size_t, size_t slot) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    slots.push_back(slot);
  });
  EXPECT_EQ(slots.size(), 16u);
  for (size_t s : slots) EXPECT_EQ(s, 0u);
}

TEST(ParallelForTest, SlotsAreWithinRequestedBound) {
  constexpr size_t kThreads = 4;
  std::vector<std::atomic<int>> slot_hits(kThreads);
  for (auto& h : slot_hits) h.store(0);
  ParallelFor(kThreads, 0, 512, 1, [&](size_t, size_t slot) {
    ASSERT_LT(slot, kThreads);
    slot_hits[slot].fetch_add(1);
  });
  int total = 0;
  for (auto& h : slot_hits) total += h.load();
  EXPECT_EQ(total, 512);
}

TEST(ParallelForTest, PropagatesFirstException) {
  EXPECT_THROW(
      ParallelFor(4, 0, 100, 1,
                  [&](size_t i, size_t) {
                    if (i == 13) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
}

TEST(ParallelForTest, ExceptionAbandonsRemainingBlocks) {
  std::atomic<size_t> visited{0};
  try {
    ParallelFor(2, 0, 1u << 20, 1, [&](size_t i, size_t) {
      if (i == 0) throw std::runtime_error("early");
      visited.fetch_add(1);
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error&) {
  }
  // Everything after the failing block is abandoned; only blocks already
  // claimed may still run.
  EXPECT_LT(visited.load(), 1u << 20);
}

TEST(PerThreadTest, LazilyConstructsOneInstancePerSlot) {
  std::atomic<int> made{0};
  PerThread<std::vector<int>> scratch(4, [&] {
    made.fetch_add(1);
    return std::make_unique<std::vector<int>>();
  });
  EXPECT_EQ(scratch.size(), 4u);
  for (size_t s = 0; s < 4; ++s) EXPECT_EQ(scratch.created(s), nullptr);

  scratch.at(1).push_back(7);
  scratch.at(1).push_back(8);
  scratch.at(3).push_back(9);
  EXPECT_EQ(made.load(), 2);
  EXPECT_EQ(scratch.created(0), nullptr);
  ASSERT_NE(scratch.created(1), nullptr);
  EXPECT_EQ(scratch.created(1)->size(), 2u);
  EXPECT_EQ(scratch.created(2), nullptr);
  ASSERT_NE(scratch.created(3), nullptr);
  EXPECT_EQ(scratch.created(3)->size(), 1u);
}

TEST(PerThreadTest, SlotsAreIsolatedUnderParallelFor) {
  constexpr size_t kThreads = 4;
  constexpr size_t kN = 400;
  PerThread<std::vector<size_t>> scratch(
      kThreads, [] { return std::make_unique<std::vector<size_t>>(); });
  ParallelFor(kThreads, 0, kN, 8,
              [&](size_t i, size_t slot) { scratch.at(slot).push_back(i); });
  // Each index lands in exactly one slot's private vector.
  std::set<size_t> seen;
  for (size_t s = 0; s < kThreads; ++s) {
    if (auto* v = scratch.created(s)) {
      for (size_t i : *v) EXPECT_TRUE(seen.insert(i).second);
    }
  }
  EXPECT_EQ(seen.size(), kN);
}

}  // namespace
}  // namespace wqe
