#include "chase/solve.h"

#include <gtest/gtest.h>

#include "chase/answ.h"  // legacy wrapper, must stay equivalent
#include "gen/product_demo.h"

namespace wqe {
namespace {

ChaseOptions DemoOptions(double budget = 4.0) {
  ChaseOptions opts;
  opts.budget = budget;
  return opts;
}

// Tighten the demo query until nothing matches (Why-Empty input).
WhyQuestion EmptyQuestion(const ProductDemo& demo) {
  WhyQuestion w = demo.Question();
  w.query.node(w.query.focus()).literals[0].constant = Value::Num(2000);
  const std::vector<NodeId> desired = {demo.p(3), demo.p(5)};
  w.exemplar = Exemplar::FromEntities(demo.graph(), desired);
  return w;
}

// Drop the price literal so the query over-matches (Why-Many input).
WhyQuestion ManyQuestion(const ProductDemo& demo) {
  WhyQuestion w = demo.Question();
  w.query.node(w.query.focus()).literals.clear();
  return w;
}

TEST(AlgorithmTest, NamesMatchThePaper) {
  EXPECT_STREQ(AlgorithmName(Algorithm::kAnsW), "AnsW");
  EXPECT_STREQ(AlgorithmName(Algorithm::kAnsWE), "AnsWE");
  EXPECT_STREQ(AlgorithmName(Algorithm::kAnsHeu), "AnsHeu");
  EXPECT_STREQ(AlgorithmName(Algorithm::kFMAnsW), "FMAnsW");
  EXPECT_STREQ(AlgorithmName(Algorithm::kApxWhyM), "ApxWhyM");
}

TEST(AlgorithmTest, FromStringAcceptsCanonicalNames) {
  for (Algorithm a :
       {Algorithm::kAnsW, Algorithm::kAnsWE, Algorithm::kAnsHeu,
        Algorithm::kFMAnsW, Algorithm::kApxWhyM}) {
    const auto parsed = AlgorithmFromString(AlgorithmName(a));
    ASSERT_TRUE(parsed.has_value()) << AlgorithmName(a);
    EXPECT_EQ(*parsed, a);
  }
}

TEST(AlgorithmTest, FromStringIsCaseInsensitiveAndKnowsAliases) {
  EXPECT_EQ(AlgorithmFromString("answ"), Algorithm::kAnsW);
  EXPECT_EQ(AlgorithmFromString("ANSW"), Algorithm::kAnsW);
  EXPECT_EQ(AlgorithmFromString("whye"), Algorithm::kAnsWE);
  EXPECT_EQ(AlgorithmFromString("heu"), Algorithm::kAnsHeu);
  EXPECT_EQ(AlgorithmFromString("fm"), Algorithm::kFMAnsW);
  EXPECT_EQ(AlgorithmFromString("whym"), Algorithm::kApxWhyM);
  EXPECT_FALSE(AlgorithmFromString("dijkstra").has_value());
  EXPECT_FALSE(AlgorithmFromString("").has_value());
}

// The redesign's compatibility contract: Solve(..., kAnsW) and the legacy
// AnsW() wrapper produce identical results, answer for answer.
TEST(SolveTest, MatchesLegacyAnsWExactly) {
  ProductDemo demo;
  ChaseResult via_solve =
      Solve(demo.graph(), demo.Question(), DemoOptions(), Algorithm::kAnsW);
  ChaseResult via_legacy = AnsW(demo.graph(), demo.Question(), DemoOptions());

  ASSERT_TRUE(via_solve.found());
  ASSERT_EQ(via_solve.answers.size(), via_legacy.answers.size());
  for (size_t i = 0; i < via_solve.answers.size(); ++i) {
    const WhyAnswer& a = via_solve.answers[i];
    const WhyAnswer& b = via_legacy.answers[i];
    EXPECT_EQ(a.rewrite.Fingerprint(), b.rewrite.Fingerprint());
    EXPECT_EQ(a.matches, b.matches);
    EXPECT_EQ(a.closeness, b.closeness);
    EXPECT_EQ(a.cost, b.cost);
  }
  EXPECT_EQ(via_solve.cl_star, via_legacy.cl_star);
  EXPECT_EQ(via_solve.stats.steps, via_legacy.stats.steps);
  EXPECT_EQ(via_solve.stats.evaluations, via_legacy.stats.evaluations);
  EXPECT_EQ(via_solve.termination(), via_legacy.termination());
}

TEST(SolveTest, DeterministicAcrossRuns) {
  ProductDemo demo;
  ChaseResult a =
      Solve(demo.graph(), demo.Question(), DemoOptions(), Algorithm::kAnsW);
  ChaseResult b =
      Solve(demo.graph(), demo.Question(), DemoOptions(), Algorithm::kAnsW);
  ASSERT_EQ(a.answers.size(), b.answers.size());
  for (size_t i = 0; i < a.answers.size(); ++i) {
    EXPECT_EQ(a.answers[i].rewrite.Fingerprint(),
              b.answers[i].rewrite.Fingerprint());
    EXPECT_EQ(a.answers[i].matches, b.answers[i].matches);
  }
}

TEST(SolveTest, DefaultAlgorithmIsAnsW) {
  ProductDemo demo;
  ChaseResult implicit = Solve(demo.graph(), demo.Question(), DemoOptions());
  ChaseResult explicit_answ =
      Solve(demo.graph(), demo.Question(), DemoOptions(), Algorithm::kAnsW);
  ASSERT_TRUE(implicit.found());
  EXPECT_EQ(implicit.best().rewrite.Fingerprint(),
            explicit_answ.best().rewrite.Fingerprint());
}

TEST(SolveTest, DispatchesEveryAlgorithm) {
  ProductDemo demo;
  const ChaseOptions opts = DemoOptions(3.0);

  ChaseResult answ = Solve(demo.graph(), demo.Question(), opts, Algorithm::kAnsW);
  EXPECT_TRUE(answ.ok());
  EXPECT_TRUE(answ.found());

  ChaseResult heu =
      Solve(demo.graph(), demo.Question(), opts, Algorithm::kAnsHeu);
  EXPECT_TRUE(heu.ok());
  EXPECT_TRUE(heu.found());

  ChaseResult fm =
      Solve(demo.graph(), demo.Question(), opts, Algorithm::kFMAnsW);
  EXPECT_TRUE(fm.ok());
  EXPECT_TRUE(fm.found());

  ChaseResult we =
      Solve(demo.graph(), EmptyQuestion(demo), opts, Algorithm::kAnsWE);
  EXPECT_TRUE(we.ok());
  EXPECT_TRUE(we.found());
  EXPECT_FALSE(we.best().matches.empty());

  ChaseResult wm =
      Solve(demo.graph(), ManyQuestion(demo), opts, Algorithm::kApxWhyM);
  EXPECT_TRUE(wm.ok());
  EXPECT_TRUE(wm.found());
}

TEST(SolveTest, EachRunReportsItsOwnPhaseBreakdown) {
  ProductDemo demo;
  obs::Observability o;
  ChaseOptions opts = DemoOptions();
  opts.observability = &o;
  ChaseResult first =
      Solve(demo.graph(), demo.Question(), opts, Algorithm::kAnsW);
  ChaseResult second =
      Solve(demo.graph(), demo.Question(), opts, Algorithm::kAnsHeu);

  // Phases are per run (DiffPhases against the shared tracer), so each
  // result names its own solve span and not the other's.
  auto has_phase = [](const ChaseResult& r, const std::string& name) {
    for (const obs::PhaseStat& p : r.stats.phases) {
      if (p.name == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_phase(first, "solve.AnsW"));
  EXPECT_FALSE(has_phase(first, "solve.AnsHeu"));
  EXPECT_TRUE(has_phase(second, "solve.AnsHeu"));
  EXPECT_FALSE(has_phase(second, "solve.AnsW"));
  EXPECT_EQ(o.metrics.counter("solve.runs").Value(), 2u);
}

TEST(SolveTest, RejectsInvalidOptionsBeforeSearching) {
  ProductDemo demo;

  ChaseOptions zero_topk = DemoOptions();
  zero_topk.top_k = 0;
  ChaseResult r = Solve(demo.graph(), demo.Question(), zero_topk);
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.found());
  EXPECT_EQ(r.stats.steps, 0u);
  EXPECT_NE(r.status.ToString().find("top_k"), std::string::npos);

  ChaseOptions bad_lambda = DemoOptions();
  bad_lambda.closeness.lambda = 1.5;
  EXPECT_FALSE(Solve(demo.graph(), demo.Question(), bad_lambda).ok());

  ChaseOptions bad_budget = DemoOptions();
  bad_budget.budget = -1;
  EXPECT_FALSE(Solve(demo.graph(), demo.Question(), bad_budget).ok());

  ChaseOptions zero_beam = DemoOptions();
  zero_beam.beam = 0;
  EXPECT_FALSE(
      Solve(demo.graph(), demo.Question(), zero_beam, Algorithm::kAnsHeu).ok());

  ChaseOptions zero_steps = DemoOptions();
  zero_steps.max_steps = 0;
  EXPECT_FALSE(Solve(demo.graph(), demo.Question(), zero_steps).ok());
}

TEST(SolveTest, ValidOptionsPassValidate) {
  EXPECT_TRUE(ChaseOptions().Validate().ok());
  EXPECT_TRUE(DemoOptions().Validate().ok());
}

TEST(SolveTest, StepCapReportsTermination) {
  ProductDemo demo;
  ChaseOptions opts = DemoOptions();
  opts.max_steps = 1;
  ChaseResult r = Solve(demo.graph(), demo.Question(), opts);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.termination(), TerminationReason::kStepCap);
}

TEST(SolveTest, OptimalTerminationOnDemo) {
  ProductDemo demo;
  ChaseResult r = Solve(demo.graph(), demo.Question(), DemoOptions());
  ASSERT_TRUE(r.found());
  EXPECT_EQ(r.termination(), TerminationReason::kOptimal);
  EXPECT_STREQ(TerminationReasonName(r.termination()), "optimal");
}

}  // namespace
}  // namespace wqe
