#include "chase/chase.h"

#include <gtest/gtest.h>

#include "chase/answ.h"
#include "gen/product_demo.h"

namespace wqe {
namespace {

class ChaseFixture : public ::testing::Test {
 protected:
  ChaseFixture() {
    opts_.budget = 4;
    opts_.use_pruning = false;  // formal semantics: no search shortcuts
    ctx_ = std::make_unique<ChaseContext>(demo_.graph(), demo_.Question(), opts_);
    chase_ = std::make_unique<QChase>(*ctx_);
  }

  Op PriceRelax() const {
    const Schema& schema = demo_.graph().schema();
    Op op;
    op.kind = OpKind::kRxL;
    op.u = 0;
    op.lit = {schema.LookupAttr("price"), CmpOp::kGe, Value::Num(840)};
    op.new_lit = {schema.LookupAttr("price"), CmpOp::kGe, Value::Num(790)};
    return op;
  }

  Op SensorRemove() const {
    Op op;
    op.kind = OpKind::kRmE;
    op.u = 0;
    op.v = 3;
    op.bound = 2;
    return op;
  }

  Op DiscountAdd() const {
    const Schema& schema = demo_.graph().schema();
    Op op;
    op.kind = OpKind::kAddL;
    op.u = 2;
    op.lit = {schema.LookupAttr("discount"), CmpOp::kEq, Value::Num(25)};
    return op;
  }

  ProductDemo demo_;
  ChaseOptions opts_;
  std::unique_ptr<ChaseContext> ctx_;
  std::unique_ptr<QChase> chase_;
};

TEST_F(ChaseFixture, InitialStateHasEmptySubExemplar) {
  ChaseState s = chase_->Initial();
  EXPECT_EQ(s.matches.size(), 3u);  // {P1, P2, P5}
  for (bool t : s.tuples_enforced) EXPECT_FALSE(t);
  for (bool c : s.constraints_enforced) EXPECT_FALSE(c);
  EXPECT_DOUBLE_EQ(s.cost, 0.0);
}

TEST_F(ChaseFixture, NoOpStepEnforcesAlreadySatisfiedTuples) {
  // Q(G) already contains P5 ~ t1 and P2 ~ t2 (vsim checks the tuple cells
  // only), so the ∅-step pulls both tuples into 𝒯₁; the price constraint
  // c1, however, has no satisfying t2-match in the answer (P2 costs 950).
  ChaseState s = chase_->Initial();
  auto next = chase_->Step(s, Op{});
  ASSERT_TRUE(next.has_value());
  EXPECT_TRUE(next->tuples_enforced[0]);  // t1 covered by P5
  EXPECT_TRUE(next->tuples_enforced[1]);  // t2 covered by P2
}

TEST_F(ChaseFixture, RelaxationStepGrowsMatchesAndExemplar) {
  // Example 4.2: relaxing the price admits P4 (a t2 match), enforcing t2
  // and the price constraint c1.
  ChaseState s = chase_->Initial();
  auto next = chase_->Step(s, PriceRelax());
  ASSERT_TRUE(next.has_value());
  EXPECT_GT(next->matches.size(), s.matches.size());
  EXPECT_TRUE(next->tuples_enforced[1]);
  EXPECT_TRUE(next->constraints_enforced[0]);
  EXPECT_GT(next->cost, 1.0);
}

TEST_F(ChaseFixture, InapplicableOperatorIsInvalidStep) {
  ChaseState s = chase_->Initial();
  Op bogus;
  bogus.kind = OpKind::kRmE;
  bogus.u = 1;
  bogus.v = 2;  // no such edge
  EXPECT_FALSE(chase_->Step(s, bogus).has_value());
}

TEST_F(ChaseFixture, RefinementCannotBreakAccumulatedExemplar) {
  // Enforce t1 via the ∅-step, then refine so hard that no t1 match
  // remains: the step must be invalid.
  ChaseState s = *chase_->Step(chase_->Initial(), Op{});
  ASSERT_TRUE(s.tuples_enforced[0]);
  const Schema& schema = demo_.graph().schema();
  Op kill;
  kill.kind = OpKind::kAddL;
  kill.u = 0;
  kill.lit = {schema.LookupAttr("price"), CmpOp::kGe, Value::Num(2000)};
  // Applying removes all matches -> 𝒯 coverage of t1 lost -> invalid.
  EXPECT_FALSE(chase_->Step(s, kill).has_value());
}

TEST_F(ChaseFixture, FullPaperSequenceReachesAnswer) {
  // ⟨o3 (price), o2 (sensor), o1 (discount)⟩ — a normal-form canonical
  // sequence reaching Q' with Q'(G) = {P3, P4, P5}.
  ChaseState s = chase_->Initial();
  auto s1 = chase_->Step(s, PriceRelax());
  ASSERT_TRUE(s1.has_value());
  auto s2 = chase_->Step(*s1, SensorRemove());
  ASSERT_TRUE(s2.has_value());
  auto s3 = chase_->Step(*s2, DiscountAdd());
  ASSERT_TRUE(s3.has_value());

  std::vector<NodeId> expected = {demo_.p(3), demo_.p(4), demo_.p(5)};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(s3->matches, expected);
  EXPECT_TRUE(s3->ops.IsNormalForm());
  EXPECT_TRUE(s3->ops.IsCanonical());
  // Both tuples and both constraints enforced: ℰ_k = ℰ.
  EXPECT_TRUE(s3->tuples_enforced[0]);
  EXPECT_TRUE(s3->tuples_enforced[1]);
  EXPECT_TRUE(s3->constraints_enforced[0]);
  EXPECT_TRUE(s3->constraints_enforced[1]);
}

TEST_F(ChaseFixture, TerminalWhenBudgetExhausted) {
  ChaseState s = chase_->Initial();
  s.cost = opts_.budget;  // nothing affordable remains
  EXPECT_TRUE(chase_->IsTerminal(s));
}

// Theorem 4.3 cross-validation: AnsW's optimum equals the exhaustive
// enumeration of the chase tree over the same operator universe.
TEST_F(ChaseFixture, AnsWMatchesExhaustiveSearch) {
  ExhaustiveResult exhaustive = ExhaustiveChase(*ctx_, /*max_depth=*/4);
  ASSERT_TRUE(exhaustive.found);

  ChaseOptions opts = opts_;
  opts.use_pruning = true;
  opts.use_cache = true;
  ChaseResult answ = AnsW(demo_.graph(), demo_.Question(), opts);
  ASSERT_TRUE(answ.found());
  EXPECT_NEAR(answ.best().closeness, exhaustive.best_closeness, 1e-9);
}

}  // namespace
}  // namespace wqe
