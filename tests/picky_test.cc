#include "chase/picky_refine.h"
#include "chase/picky_relax.h"

#include <gtest/gtest.h>

#include "gen/product_demo.h"

namespace wqe {
namespace {

class PickyFixture : public ::testing::Test {
 protected:
  PickyFixture() {
    opts_.budget = 5;
    ctx_ = std::make_unique<ChaseContext>(demo_.graph(), demo_.Question(), opts_);
  }

  bool HasOpKind(const std::vector<ScoredOp>& ops, OpKind kind) {
    for (const ScoredOp& so : ops) {
      if (so.op.kind == kind) return true;
    }
    return false;
  }

  ProductDemo demo_;
  ChaseOptions opts_;
  std::unique_ptr<ChaseContext> ctx_;
};

TEST_F(PickyFixture, RelaxGeneratesPriceRelaxation) {
  auto ops = GenerateRelaxOps(*ctx_, *ctx_->root());
  ASSERT_FALSE(ops.empty());
  // The price literal blocks P3/P4: an RxL on price must be generated, and
  // its discretized constant is the largest RC price below 840 (795).
  bool found = false;
  for (const ScoredOp& so : ops) {
    if (so.op.kind == OpKind::kRxL &&
        so.op.lit.attr == demo_.graph().schema().LookupAttr("price")) {
      found = true;
      EXPECT_DOUBLE_EQ(so.op.new_lit.constant.num(), 795);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(PickyFixture, RelaxGeneratesSensorEdgeRemoval) {
  // P3 has no sensor within b_m hops: RmE((focus, sensor)) must appear.
  auto ops = GenerateRelaxOps(*ctx_, *ctx_->root());
  bool found = false;
  for (const ScoredOp& so : ops) {
    if (so.op.kind == OpKind::kRmE && so.op.v == 3) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(PickyFixture, RelaxOpsAreApplicableAndCosted) {
  auto ops = GenerateRelaxOps(*ctx_, *ctx_->root());
  for (const ScoredOp& so : ops) {
    EXPECT_TRUE(Applicable(so.op, ctx_->root()->query, opts_.max_bound))
        << so.op.ToString(demo_.graph().schema());
    EXPECT_GE(so.cost, 1.0);
    EXPECT_LE(so.cost, 2.0);
    EXPECT_TRUE(so.op.is_relax());
    EXPECT_FALSE(so.support.empty());
  }
}

// Lemma 5.2: pickiness overestimates the closeness gain.
TEST_F(PickyFixture, PickinessBoundsActualGain) {
  auto ops = GenerateRelaxOps(*ctx_, *ctx_->root());
  for (const ScoredOp& so : ops) {
    PatternQuery q = ctx_->root()->query;
    ASSERT_TRUE(Apply(so.op, &q, opts_.max_bound));
    OpSequence seq;
    seq.Append(so.op);
    auto eval = ctx_->Evaluate(q, seq);
    const double gain = eval->cl - ctx_->root()->cl;
    EXPECT_GE(so.pickiness + 1e-9, gain)
        << so.op.ToString(demo_.graph().schema());
  }
}

TEST_F(PickyFixture, RefineGeneratesDiscountAddL) {
  // From the relaxed query (price removed, sensor edge removed) whose
  // answer includes P1/P2 (IM) and P3/P4/P5 (RM), AddL(Carrier.discount=25)
  // must be generated — the Fig 8 example.
  PatternQuery q = ctx_->root()->query;
  Op rml;
  rml.kind = OpKind::kRmL;
  rml.u = q.focus();
  rml.lit = q.node(q.focus()).literals[0];
  ASSERT_TRUE(Apply(rml, &q, opts_.max_bound));
  Op rme;
  rme.kind = OpKind::kRmE;
  rme.u = q.focus();
  rme.v = 3;
  ASSERT_TRUE(Apply(rme, &q, opts_.max_bound));
  OpSequence seq;
  seq.Append(rml);
  seq.Append(rme);
  auto eval = ctx_->Evaluate(q, seq);
  ASSERT_EQ(eval->rel.im.size(), 3u);  // P1, P2, P6 (all with AT&T)
  ASSERT_EQ(eval->rel.rm.size(), 3u);

  auto ops = GenerateRefineOps(*ctx_, *eval);
  bool found = false;
  for (const ScoredOp& so : ops) {
    if (so.op.kind == OpKind::kAddL && so.op.u == 2 &&
        so.op.lit.attr == demo_.graph().schema().LookupAttr("discount")) {
      found = true;
      // It removes all three irrelevant matches and keeps the relevant ones.
      EXPECT_EQ(so.support.size(), 3u);
      EXPECT_GT(so.pickiness, 0);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(PickyFixture, RefineOpsOnlyWhenIrrelevantMatchesExist) {
  // The original query has RM={P5}, IM={P1,P2}: refinements exist.
  auto ops = GenerateRefineOps(*ctx_, *ctx_->root());
  EXPECT_FALSE(ops.empty());
  for (const ScoredOp& so : ops) {
    EXPECT_TRUE(so.op.is_refine());
    EXPECT_TRUE(Applicable(so.op, ctx_->root()->query, opts_.max_bound));
    EXPECT_FALSE(so.support.empty());  // every kept op removes some IM
  }
}

TEST_F(PickyFixture, RefineGeneratesRfEOnLooseBounds) {
  auto ops = GenerateRefineOps(*ctx_, *ctx_->root());
  // The sensor edge has bound 2 > 1.
  EXPECT_TRUE(HasOpKind(ops, OpKind::kRfE));
}

TEST_F(PickyFixture, WitnessCollectionCapsPerFocus) {
  WitnessSet w =
      CollectWitnesses(*ctx_, ctx_->root()->query, ctx_->root()->matches);
  ASSERT_EQ(w.focus_nodes.size(), 3u);
  for (const auto& assigns : w.assignments) {
    EXPECT_GE(assigns.size(), 1u);
    EXPECT_LE(assigns.size(), opts_.max_witnesses);
  }
}


// RxE generation: when the missing sensor sits one hop beyond the edge
// bound (but within b_m), GenRx proposes the minimal bound relaxation
// rather than removing the edge.
TEST(PickyRxETest, GeneratesMinimalBoundRelaxation) {
  Graph g;
  NodeId p1 = g.AddNode("Phone", "good");
  g.SetNum(p1, "price", 100);
  NodeId p2 = g.AddNode("Phone", "missing");
  g.SetNum(p2, "price", 100);
  NodeId hub1 = g.AddNode("Hub");
  NodeId hub2 = g.AddNode("Hub");
  NodeId s1 = g.AddNode("Sensor");
  NodeId s2 = g.AddNode("Sensor");
  // p1 reaches its sensor in 2 hops; p2 needs 3.
  g.AddEdge(p1, hub1);
  g.AddEdge(hub1, s1);
  g.AddEdge(p2, hub2);
  NodeId hub3 = g.AddNode("Hub");
  g.AddEdge(hub2, hub3);
  g.AddEdge(hub3, s2);
  g.Finalize();

  PatternQuery q;
  QNodeId phone = q.AddNode(g.schema().LookupLabel("Phone"));
  QNodeId sensor = q.AddNode(g.schema().LookupLabel("Sensor"));
  q.SetFocus(phone);
  q.AddEdge(phone, sensor, 2);

  WhyQuestion w;
  w.query = q;
  std::vector<NodeId> desired = {p2};
  w.exemplar = Exemplar::FromEntities(g, desired);

  ChaseOptions opts;
  opts.budget = 3;
  opts.max_bound = 3;
  ChaseContext ctx(g, w, opts);
  ASSERT_EQ(ctx.root()->rel.rc.size(), 1u);

  auto ops = GenerateRelaxOps(ctx, *ctx.root());
  bool found_rxe = false;
  for (const ScoredOp& so : ops) {
    if (so.op.kind == OpKind::kRxE) {
      found_rxe = true;
      EXPECT_EQ(so.op.bound, 2u);
      EXPECT_EQ(so.op.new_bound, 3u);  // minimal relaxation admitting p2
    }
  }
  EXPECT_TRUE(found_rxe);
}

}  // namespace
}  // namespace wqe
