#include "exemplar/relevance.h"
#include <span>

#include <gtest/gtest.h>

#include "gen/product_demo.h"

namespace wqe {
namespace {

class RelevanceFixture : public ::testing::Test {
 protected:
  RelevanceFixture() : adom_(demo_.graph()), eval_(demo_.graph(), adom_) {
    const LabelId cell = demo_.graph().schema().LookupLabel("Cellphone");
    const std::span<const NodeId> bucket = demo_.graph().NodesWithLabel(cell);
    universe_.assign(bucket.begin(), bucket.end());
    rep_ = ComputeRep(eval_, demo_.MakeExemplar(), universe_);
  }

  ProductDemo demo_;
  ActiveDomains adom_;
  ClosenessEvaluator eval_;
  std::vector<NodeId> universe_;
  RepResult rep_;
};

// The 2x2 table of §2.2 on the paper's example: Q(G) = {P1, P2, P5},
// rep = {P3, P4, P5}.
TEST_F(RelevanceFixture, PaperExampleClassification) {
  std::vector<NodeId> matches = {demo_.p(1), demo_.p(2), demo_.p(5)};
  std::sort(matches.begin(), matches.end());
  RelevanceSets sets = Classify(universe_, matches, rep_);

  ASSERT_EQ(sets.rm.size(), 1u);
  EXPECT_EQ(sets.rm[0], demo_.p(5));
  EXPECT_EQ(sets.im.size(), 2u);  // P1, P2
  EXPECT_EQ(sets.rc.size(), 2u);  // P3, P4
  EXPECT_EQ(sets.ic.size(), 1u);  // P6
  EXPECT_EQ(sets.num_candidates, 6u);

  EXPECT_EQ(sets.StatusOf(demo_.p(5)), Relevance::kRM);
  EXPECT_EQ(sets.StatusOf(demo_.p(1)), Relevance::kIM);
  EXPECT_EQ(sets.StatusOf(demo_.p(3)), Relevance::kRC);
  EXPECT_EQ(sets.StatusOf(demo_.p(6)), Relevance::kIC);
}

TEST_F(RelevanceFixture, AnswerClosenessFormula) {
  std::vector<NodeId> matches = {demo_.p(1), demo_.p(2), demo_.p(5)};
  std::sort(matches.begin(), matches.end());
  RelevanceSets sets = Classify(universe_, matches, rep_);
  // (cl(P5) - λ * 2) / 6 = (1 - 2) / 6 with λ = 1.
  EXPECT_NEAR(sets.AnswerCloseness(1.0), -1.0 / 6.0, 1e-12);
  // λ = 0 ignores irrelevant matches.
  EXPECT_NEAR(sets.AnswerCloseness(0.0), 1.0 / 6.0, 1e-12);
}

TEST_F(RelevanceFixture, PaperExampleRewriteCloseness) {
  // Q'(G) = {P3, P4, P5}: closeness 3/6 = 1/2 (Example 3.1).
  std::vector<NodeId> matches = {demo_.p(3), demo_.p(4), demo_.p(5)};
  std::sort(matches.begin(), matches.end());
  RelevanceSets sets = Classify(universe_, matches, rep_);
  EXPECT_NEAR(sets.AnswerCloseness(1.0), 0.5, 1e-12);
  EXPECT_NEAR(sets.UpperBound(), 0.5, 1e-12);
}

TEST_F(RelevanceFixture, UpperBoundIgnoresPenalty) {
  std::vector<NodeId> matches = {demo_.p(1), demo_.p(2), demo_.p(5)};
  std::sort(matches.begin(), matches.end());
  RelevanceSets sets = Classify(universe_, matches, rep_);
  EXPECT_NEAR(sets.UpperBound(), 1.0 / 6.0, 1e-12);
  EXPECT_GE(sets.UpperBound(), sets.AnswerCloseness(1.0));
}

TEST_F(RelevanceFixture, TheoreticalOptimal) {
  // cl* = Σ cl(rep) / |V_uo| = 3/6 (Remarks of §3).
  EXPECT_NEAR(TheoreticalOptimal(rep_, universe_.size()), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(TheoreticalOptimal(rep_, 0), 0.0);
}

TEST_F(RelevanceFixture, EmptyMatchesAllCandidatesSplitRcIc) {
  RelevanceSets sets = Classify(universe_, {}, rep_);
  EXPECT_TRUE(sets.rm.empty());
  EXPECT_TRUE(sets.im.empty());
  EXPECT_EQ(sets.rc.size(), 3u);
  EXPECT_EQ(sets.ic.size(), 3u);
  EXPECT_DOUBLE_EQ(sets.AnswerCloseness(1.0), 0.0);
}

}  // namespace
}  // namespace wqe
