// Tests for the live-telemetry layer: the sliding-window SLO histograms,
// the seqlock flight recorder (including under a concurrent hammer — the
// TSan stage runs these), the HTTP/1.0 exposition server and its three
// documents (/statusz, /metricsz, /requestz), the Prometheus text render,
// and the canonical metric-name inventory that keeps DESIGN.md's table
// honest against what the code actually registers.

#include "obs/telemetry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "chase/report.h"
#include "chase/solve.h"
#include "gen/datasets.h"
#include "gen/synthetic.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/metric_names.h"
#include "serve/server.h"
#include "workload/why_factory.h"

namespace wqe {
namespace {

// ---------------------------------------------------------------------------
// SlidingHistogram

TEST(SlidingHistogramTest, ObservationsExpireWithTheWindow) {
  // 8-slot ring over an 8-second window -> 1s epochs. Drive time explicitly.
  obs::SlidingHistogram w(8.0);
  const uint64_t t0 = uint64_t{1} << 40;  // arbitrary epoch-aligned-ish base
  w.ObserveAt(1000, t0);
  EXPECT_EQ(w.SnapAt(t0).count, 1u);
  // Still inside the window a few seconds later.
  EXPECT_EQ(w.SnapAt(t0 + 3'000'000'000ull).count, 1u);
  // A full window later the slot has aged out.
  EXPECT_EQ(w.SnapAt(t0 + 9'000'000'000ull).count, 0u);
}

TEST(SlidingHistogramTest, MergesAcrossEpochSlots) {
  obs::SlidingHistogram w(8.0);
  const uint64_t t0 = uint64_t{1} << 40;
  for (int s = 0; s < 5; ++s) {
    w.ObserveAt(100 * (s + 1), t0 + s * 1'000'000'000ull);
  }
  const obs::Histogram::Snapshot snap = w.SnapAt(t0 + 4'500'000'000ull);
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.sum, 100u + 200 + 300 + 400 + 500);
}

TEST(SlidingHistogramTest, SlotReclaimDropsOnlyAgedEpochs) {
  obs::SlidingHistogram w(8.0);
  const uint64_t t0 = uint64_t{1} << 40;
  w.ObserveAt(7, t0);
  // 8 epochs later the writer lands on the same ring slot; the old epoch's
  // tally must not leak into the new one.
  w.ObserveAt(9, t0 + 8'000'000'000ull);
  const obs::Histogram::Snapshot snap = w.SnapAt(t0 + 8'000'000'000ull);
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.sum, 9u);
}

TEST(SlidingHistogramTest, ConcurrentObserversLoseNothingWithinOneEpoch) {
  obs::SlidingHistogram w(60.0);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&w] {
      for (int i = 0; i < kPerThread; ++i) w.Observe(50);
    });
  }
  for (std::thread& worker : workers) worker.join();
  // All observations land within one 7.5s epoch (the loop takes far less),
  // so the snap must account for every single one.
  EXPECT_EQ(w.Snap().count,
            static_cast<uint64_t>(kThreads) * kPerThread);
}

// ---------------------------------------------------------------------------
// FlightRecorder

obs::RequestDigest MakeDigest(uint64_t id, uint64_t total_ns) {
  obs::RequestDigest d;
  d.id = id;
  d.question_fp = 0xabcdef0123456789ull;
  d.queue_ns = 1000;
  d.solve_ns = total_ns / 2;
  d.total_ns = total_ns;
  d.answer_bytes = 64;
  d.status_code = 0;
  d.termination = 1;
  d.set_algorithm("AnsW");
  std::snprintf(d.phases[0].name, sizeof(d.phases[0].name), "evaluate");
  d.phases[0].self_ns = total_ns / 3;
  return d;
}

TEST(FlightRecorderTest, RingKeepsLastKNewestFirst) {
  obs::FlightRecorder::Options fopts;
  fopts.capacity = 4;
  fopts.slow_threshold_ns = 0;
  obs::FlightRecorder fr(fopts);
  for (uint64_t i = 0; i < 10; ++i) fr.Record(MakeDigest(i, 1000));
  EXPECT_EQ(fr.recorded(), 10u);
  const std::vector<obs::RequestDigest> recent = fr.Recent();
  ASSERT_EQ(recent.size(), 4u);
  EXPECT_EQ(recent[0].id, 9u);
  EXPECT_EQ(recent[3].id, 6u);
  EXPECT_EQ(recent[0].sequence, 9u);  // recorder-assigned completion order
}

TEST(FlightRecorderTest, SlowTierSurvivesFastTraffic) {
  obs::FlightRecorder::Options fopts;
  fopts.capacity = 8;
  fopts.slow_capacity = 4;
  fopts.slow_threshold_ns = 1'000'000;
  obs::FlightRecorder fr(fopts);
  fr.Record(MakeDigest(1, 5'000'000));  // slow
  // A burst of fast requests flushes the recent ring entirely...
  for (uint64_t i = 100; i < 120; ++i) fr.Record(MakeDigest(i, 10));
  EXPECT_EQ(fr.slow_recorded(), 1u);
  const std::vector<obs::RequestDigest> slow = fr.Slow();
  // ...but the slow outlier is still retained in its own tier.
  ASSERT_EQ(slow.size(), 1u);
  EXPECT_EQ(slow[0].id, 1u);
  for (const obs::RequestDigest& d : fr.Recent()) EXPECT_GE(d.id, 100u);
}

TEST(FlightRecorderTest, ToJsonIsStrictJson) {
  obs::FlightRecorder fr;
  fr.Record(MakeDigest(7, 300'000'000));  // past default slow threshold
  const Result<obs::JsonValue> doc = obs::ParseJson(fr.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc.value().NumberOr("recorded", 0), 1.0);
  EXPECT_EQ(doc.value().NumberOr("slow_recorded", 0), 1.0);
  const obs::JsonValue* recent = doc.value().Find("recent");
  ASSERT_NE(recent, nullptr);
  ASSERT_EQ(recent->items.size(), 1u);
  EXPECT_EQ(recent->items[0].NumberOr("id", 0), 7.0);
  EXPECT_EQ(recent->items[0].StringOr("algorithm", ""), "AnsW");
  EXPECT_EQ(recent->items[0].StringOr("question_fp", ""), "abcdef0123456789");
}

TEST(FlightRecorderTest, ConcurrentWritersAndReadersNeverTear) {
  obs::FlightRecorder::Options fopts;
  fopts.capacity = 32;
  fopts.slow_threshold_ns = 0;
  obs::FlightRecorder fr(fopts);

  std::atomic<bool> stop{false};
  constexpr int kWriters = 4;
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&fr, t] {
      for (uint64_t i = 0; i < 20000; ++i) {
        // Writer t stamps every field with the same value; a torn read mixes
        // two writers' slots and trips the consistency check below.
        obs::RequestDigest d;
        const uint64_t tag = static_cast<uint64_t>(t) * 1'000'000 + i;
        d.id = tag;
        d.question_fp = tag;
        d.queue_ns = tag;
        d.solve_ns = tag;
        d.total_ns = tag;
        d.answer_bytes = tag;
        d.set_algorithm("AnsW");
        fr.Record(d);
      }
    });
  }
  std::thread reader([&fr, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const obs::RequestDigest& d : fr.Recent()) {
        EXPECT_EQ(d.id, d.question_fp);
        EXPECT_EQ(d.id, d.total_ns);
        EXPECT_EQ(d.id, d.answer_bytes);
      }
    }
  });
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(fr.recorded(), static_cast<uint64_t>(kWriters) * 20000);
}

TEST(FlightRecorderTest, DigestPhasesPicksTopPhasesBySelfTime) {
  std::vector<obs::PhaseStat> phases;
  const char* names[] = {"tiny", "evaluate", "refine", "verify", "score",
                         "prune"};
  const double selfs[] = {0.0001, 0.5, 0.3, 0.2, 0.1, 0.05};
  for (int i = 0; i < 6; ++i) {
    obs::PhaseStat p;
    p.name = names[i];
    p.self_seconds = selfs[i];
    phases.push_back(p);
  }
  obs::RequestDigest d;
  ChaseReport::DigestPhases(phases, d);
  EXPECT_STREQ(d.phases[0].name, "evaluate");
  EXPECT_STREQ(d.phases[1].name, "refine");
  EXPECT_STREQ(d.phases[2].name, "verify");
  EXPECT_STREQ(d.phases[3].name, "score");
  EXPECT_EQ(d.phases[0].self_ns, 500'000'000u);
}

// ---------------------------------------------------------------------------
// TelemetryServer + HttpGet

TEST(TelemetryServerTest, ServesRegisteredRoutesOnEphemeralPort) {
  obs::TelemetryServer server;
  server.Handle("/statusz", "application/json",
                [] { return std::string("{\"ok\":true}"); });
  server.Handle("/textz", "text/plain", [] { return std::string("hello\n"); });
  obs::TelemetryOptions topts;
  topts.port = 0;
  ASSERT_TRUE(server.Start(topts).ok());
  ASSERT_NE(server.port(), 0);

  const Result<std::string> statusz =
      obs::HttpGet("127.0.0.1", server.port(), "/statusz");
  ASSERT_TRUE(statusz.ok()) << statusz.status().ToString();
  EXPECT_EQ(statusz.value(), "{\"ok\":true}");

  // Query strings are stripped before route lookup.
  const Result<std::string> with_query =
      obs::HttpGet("127.0.0.1", server.port(), "/textz?verbose=1");
  ASSERT_TRUE(with_query.ok());
  EXPECT_EQ(with_query.value(), "hello\n");

  EXPECT_EQ(server.requests_served(), 2u);

  // Unknown paths 404; HttpGet surfaces the non-200 as a status.
  EXPECT_FALSE(obs::HttpGet("127.0.0.1", server.port(), "/nope").ok());

  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // idempotent
}

TEST(TelemetryServerTest, DoubleStartIsRejected) {
  obs::TelemetryServer server;
  obs::TelemetryOptions topts;
  topts.port = 0;
  ASSERT_TRUE(server.Start(topts).ok());
  EXPECT_FALSE(server.Start(topts).ok());
  server.Stop();
}

TEST(TelemetryServerTest, IdleHookRunsWithoutTraffic) {
  obs::TelemetryServer server;
  std::atomic<int> ticks{0};
  server.set_idle_hook([&ticks] { ticks.fetch_add(1); });
  obs::TelemetryOptions topts;
  topts.port = 0;
  ASSERT_TRUE(server.Start(topts).ok());
  for (int i = 0; i < 100 && ticks.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  server.Stop();
  EXPECT_GT(ticks.load(), 0);
}

TEST(PrometheusTextTest, RendersEveryRegistryKind) {
  obs::MetricsRegistry reg;
  reg.counter("serve.completed").Inc(3);
  reg.gauge("cache.entries").Set(17);
  reg.histogram("serve.latency_ns").Observe(1000);
  reg.sliding("solve.AnsW.latency_ns", 60.0).Observe(2000);
  const std::string text = obs::PrometheusText(reg);
  EXPECT_NE(text.find("# TYPE wqe_serve_completed counter\n"
                      "wqe_serve_completed 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE wqe_cache_entries gauge\n"
                      "wqe_cache_entries 17\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE wqe_serve_latency_ns summary"),
            std::string::npos);
  EXPECT_NE(text.find("wqe_serve_latency_ns_count 1"), std::string::npos);
  // Sliding windows get a _window suffix so they never collide with the
  // lifetime histogram of the same name.
  EXPECT_NE(text.find("wqe_solve_AnsW_latency_ns_window_count 1"),
            std::string::npos);
  EXPECT_NE(text.find("wqe_solve_AnsW_latency_ns_window_seconds 60"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Server integration

Graph TestGraph() { return GenerateGraph(ImdbLike(0.05)); }

std::vector<BenchCase> TestCases(const Graph& g, size_t n) {
  WhyFactoryOptions factory;
  factory.query.num_edges = 3;
  factory.query.max_literals = 3;
  factory.disturb.num_ops = 3;
  factory.seed = 7;
  return MakeBenchCases(g, n, factory);
}

Request MakeRequest(const BenchCase& c, uint64_t id) {
  Request req;
  req.question = c.question;
  req.options.budget = 3;
  req.options.beam = 2;
  req.options.max_steps = 2000;
  req.algorithm = Algorithm::kAnsW;
  req.id = id;
  return req;
}

TEST(ServeTelemetryTest, StatuszAgreesWithServerStats) {
  Graph g = TestGraph();
  const auto cases = TestCases(g, 2);
  ASSERT_FALSE(cases.empty());

  serve::ServerOptions sopts;
  sopts.concurrency = 2;
  sopts.telemetry_port = 0;  // ephemeral
  serve::Server server(g, sopts);
  ASSERT_TRUE(server.telemetry_status().ok())
      << server.telemetry_status().ToString();
  ASSERT_NE(server.telemetry_port(), 0);

  constexpr size_t kRequests = 6;
  std::vector<std::future<Response>> futures;
  for (size_t i = 0; i < kRequests; ++i) {
    futures.push_back(server.Submit(MakeRequest(cases[i % cases.size()], i)));
  }
  for (auto& f : futures) ASSERT_TRUE(f.get().ok());

  const Result<std::string> body =
      obs::HttpGet("127.0.0.1", server.telemetry_port(), "/statusz");
  ASSERT_TRUE(body.ok()) << body.status().ToString();
  const Result<obs::JsonValue> doc = obs::ParseJson(body.value());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString() << "\n" << body.value();

  const obs::JsonValue* requests = doc.value().Find("requests");
  ASSERT_NE(requests, nullptr);
  EXPECT_EQ(requests->NumberOr("admitted", -1), double(kRequests));
  EXPECT_EQ(requests->NumberOr("completed", -1), double(kRequests));
  EXPECT_EQ(requests->NumberOr("shed", -1), 0.0);
  EXPECT_EQ(requests->NumberOr("deadline_expired", -1), 0.0);

  const obs::JsonValue* latency = doc.value().Find("latency");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->NumberOr("count", -1), double(kRequests));
  EXPECT_GT(latency->NumberOr("p50_ms", 0), 0.0);

  const obs::JsonValue* flight = doc.value().Find("flight");
  ASSERT_NE(flight, nullptr);
  EXPECT_EQ(flight->NumberOr("recorded", -1), double(kRequests));

  EXPECT_GT(doc.value().NumberOr("uptime_seconds", 0), 0.0);

  // The Stats extension mirrors the exposed document.
  const serve::Server::Stats stats = server.stats();
  EXPECT_EQ(stats.completed, kRequests);
  EXPECT_EQ(stats.deadline_expired, 0u);
  EXPECT_GT(stats.latency_p50_ms, 0.0);
  EXPECT_GE(stats.latency_p99_ms, stats.latency_p50_ms);
}

TEST(ServeTelemetryTest, MetricszMatchesInProcessRegistryWalk) {
  Graph g = TestGraph();
  const auto cases = TestCases(g, 1);
  ASSERT_FALSE(cases.empty());

  serve::ServerOptions sopts;
  sopts.concurrency = 1;
  sopts.telemetry_port = 0;
  serve::Server server(g, sopts);
  ASSERT_NE(server.telemetry_port(), 0);
  ASSERT_TRUE(server.Serve(MakeRequest(cases[0], 1)).ok());
  server.Drain();

  const Result<std::string> scraped =
      obs::HttpGet("127.0.0.1", server.telemetry_port(), "/metricsz");
  ASSERT_TRUE(scraped.ok()) << scraped.status().ToString();
  // The server is idle between Drain() and the scrape, so the exposition
  // must be byte-identical to an in-process render of the same registry.
  EXPECT_EQ(scraped.value(), obs::PrometheusText(server.observability().metrics));
  EXPECT_NE(scraped.value().find("wqe_serve_completed 1"), std::string::npos);
  EXPECT_NE(scraped.value().find("wqe_solve_AnsW_latency_ns_window_count 1"),
            std::string::npos);
}

TEST(ServeTelemetryTest, RequestzCarriesPerRequestDigests) {
  Graph g = TestGraph();
  const auto cases = TestCases(g, 2);
  ASSERT_FALSE(cases.empty());

  serve::ServerOptions sopts;
  sopts.concurrency = 2;
  sopts.telemetry_port = 0;
  serve::Server server(g, sopts);
  ASSERT_NE(server.telemetry_port(), 0);

  for (size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(server.Serve(MakeRequest(cases[i % cases.size()], 100 + i)).ok());
  }

  const Result<std::string> body =
      obs::HttpGet("127.0.0.1", server.telemetry_port(), "/requestz");
  ASSERT_TRUE(body.ok()) << body.status().ToString();
  const Result<obs::JsonValue> doc = obs::ParseJson(body.value());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc.value().NumberOr("recorded", -1), 4.0);
  const obs::JsonValue* recent = doc.value().Find("recent");
  ASSERT_NE(recent, nullptr);
  ASSERT_EQ(recent->items.size(), 4u);
  // Newest first; ids echo Request::id.
  EXPECT_EQ(recent->items[0].NumberOr("id", -1), 103.0);
  EXPECT_EQ(recent->items[3].NumberOr("id", -1), 100.0);
  for (const obs::JsonValue& d : recent->items) {
    EXPECT_EQ(d.StringOr("algorithm", ""), "AnsW");
    EXPECT_GT(d.NumberOr("total_ms", 0), 0.0);
    const obs::JsonValue* phases = d.Find("phases");
    ASSERT_NE(phases, nullptr);
    EXPECT_FALSE(phases->items.empty())
        << "digests should carry the solve's top phases";
  }
  // Identical questions collapse to one fingerprint; distinct ones differ.
  const std::string fp0 = recent->items[0].StringOr("question_fp", "");
  const std::string fp1 = recent->items[1].StringOr("question_fp", "");
  const std::string fp2 = recent->items[2].StringOr("question_fp", "");
  EXPECT_EQ(fp0, fp2);  // ids 103 and 101 asked the same question
  if (cases.size() >= 2) {
    EXPECT_NE(fp0, fp1);
  }
}

// ---------------------------------------------------------------------------
// Metric inventory (DESIGN.md honesty)

TEST(MetricInventoryTest, EveryRuntimeMetricNameIsCanonical) {
  Graph g = TestGraph();
  const auto cases = TestCases(g, 1);
  ASSERT_FALSE(cases.empty());

  serve::ServerOptions sopts;
  sopts.concurrency = 1;
  serve::Server server(g, sopts);
  ASSERT_TRUE(server.Serve(MakeRequest(cases[0], 1)).ok());

  std::vector<std::string> unknown;
  const obs::MetricsRegistry& m = server.observability().metrics;
  const auto check = [&unknown](const std::string& name) {
    if (!obs::IsKnownMetricName(name)) unknown.push_back(name);
  };
  m.ForEachCounter([&check](const std::string& name, uint64_t) { check(name); });
  m.ForEachGauge([&check](const std::string& name, int64_t) { check(name); });
  m.ForEachHistogram(
      [&check](const std::string& name, const obs::Histogram::Snapshot&) {
        check(name);
      });
  m.ForEachSliding([&check](const std::string& name,
                            const obs::Histogram::Snapshot&,
                            double) { check(name); });
  EXPECT_TRUE(unknown.empty())
      << "metric names missing from obs/metric_names.h (add them there AND "
         "to DESIGN.md's inventory table): "
      << [&unknown] {
           std::string joined;
           for (const std::string& n : unknown) joined += n + " ";
           return joined;
         }();
}

TEST(MetricInventoryTest, DesignDocTableListsEveryCanonicalName) {
  std::ifstream in(WQE_SOURCE_DIR "/DESIGN.md");
  ASSERT_TRUE(in.good()) << "DESIGN.md not found at " WQE_SOURCE_DIR;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string doc = buf.str();

  std::vector<std::string> missing;
  for (std::string_view name : obs::kKnownMetricNames) {
    if (doc.find("`" + std::string(name) + "`") == std::string::npos) {
      missing.push_back(std::string(name));
    }
  }
  for (const obs::MetricNameFamily& family : obs::kKnownMetricFamilies) {
    if (doc.find("`" + std::string(family.example) + "`") ==
        std::string::npos) {
      missing.push_back(std::string(family.example));
    }
  }
  EXPECT_TRUE(missing.empty()) << [&missing] {
    std::string joined =
        "DESIGN.md's metric inventory table is missing: ";
    for (const std::string& n : missing) joined += "`" + n + "` ";
    return joined;
  }();
}

}  // namespace
}  // namespace wqe
