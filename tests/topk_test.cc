#include "chase/ans_heu.h"
// §6.2 top-k query suggestion: the extension must preserve the optimality
// guarantee — the k best closenesses AnsW reports equal the k best among
// all answers the exhaustive reference enumeration finds.

#include <gtest/gtest.h>

#include "chase/answ.h"
#include "chase/chase.h"
#include "gen/product_demo.h"

namespace wqe {
namespace {

class TopKFixture : public ::testing::Test {
 protected:
  ChaseOptions Opts(size_t k) const {
    ChaseOptions o;
    o.budget = 4;
    o.top_k = k;
    return o;
  }

  ProductDemo demo_;
};

TEST_F(TopKFixture, TopOneEqualsExhaustiveOptimum) {
  ChaseOptions exhaustive_opts = Opts(1);
  exhaustive_opts.use_pruning = false;
  ChaseContext ref_ctx(demo_.graph(), demo_.Question(), exhaustive_opts);
  ExhaustiveResult ref = ExhaustiveChase(ref_ctx, 4);
  ASSERT_TRUE(ref.found);

  ChaseResult r = AnsW(demo_.graph(), demo_.Question(), Opts(1));
  EXPECT_NEAR(r.best().closeness, ref.best_closeness, 1e-9);
}

TEST_F(TopKFixture, TopKBestMatchesTopOneBest) {
  // The §6.2 pruning change must not cost the global optimum.
  const double top1 =
      AnsW(demo_.graph(), demo_.Question(), Opts(1)).best().closeness;
  for (size_t k : {2u, 3u, 5u}) {
    ChaseResult r = AnsW(demo_.graph(), demo_.Question(), Opts(k));
    EXPECT_NEAR(r.best().closeness, top1, 1e-9) << "k=" << k;
  }
}

TEST_F(TopKFixture, LargerKNeverShrinksTheList) {
  size_t prev = 0;
  for (size_t k : {1u, 2u, 3u, 5u}) {
    ChaseResult r = AnsW(demo_.graph(), demo_.Question(), Opts(k));
    EXPECT_GE(r.answers.size(), std::min<size_t>(prev, k));
    EXPECT_LE(r.answers.size(), k);
    prev = r.answers.size();
  }
}

TEST_F(TopKFixture, AllTopKAnswersSatisfyExemplar) {
  ChaseResult r = AnsW(demo_.graph(), demo_.Question(), Opts(5));
  ASSERT_GE(r.answers.size(), 2u);
  for (const WhyAnswer& a : r.answers) {
    EXPECT_TRUE(a.satisfies_exemplar);
  }
}

TEST_F(TopKFixture, SecondBestIsTheNextClosenessLevel) {
  // On the demo the optimum is 1/2 ({P3,P4,P5}); the runner-up keeps two of
  // the three relevant phones (closeness 1/3) or trades one for a penalty.
  ChaseResult r = AnsW(demo_.graph(), demo_.Question(), Opts(3));
  ASSERT_GE(r.answers.size(), 2u);
  EXPECT_NEAR(r.answers[0].closeness, 0.5, 1e-9);
  EXPECT_LT(r.answers[1].closeness, r.answers[0].closeness + 1e-12);
  EXPECT_GT(r.answers[1].closeness, 0.0);
}

TEST_F(TopKFixture, HeuristicTopKAlsoRanked) {
  ChaseOptions o = Opts(3);
  o.beam = 3;
  ChaseResult r = AnsHeu(demo_.graph(), demo_.Question(), o);
  for (size_t i = 1; i < r.answers.size(); ++i) {
    EXPECT_GE(r.answers[i - 1].closeness + 1e-12, r.answers[i].closeness);
  }
}

}  // namespace
}  // namespace wqe
