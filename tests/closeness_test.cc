#include "exemplar/closeness.h"

#include <gtest/gtest.h>

#include "exemplar/similarity.h"
#include "gen/product_demo.h"

namespace wqe {
namespace {

class ClosenessFixture : public ::testing::Test {
 protected:
  ClosenessFixture()
      : adom_(demo_.graph()), eval_(demo_.graph(), adom_) {}

  ProductDemo demo_;
  ActiveDomains adom_;
  ClosenessEvaluator eval_;
};

TEST_F(ClosenessFixture, WildcardAndVariableCellsScoreOne) {
  // t1 = <display 6.2, storage _, price _>: P3 matches display exactly.
  const Exemplar e = demo_.MakeExemplar();
  const TuplePattern& t1 = e.tuples()[0];
  EXPECT_DOUBLE_EQ(eval_.ClNodeTuple(demo_.p(3), t1), 1.0);
  EXPECT_DOUBLE_EQ(eval_.ClNodeTuple(demo_.p(1), t1), 1.0);
}

TEST_F(ClosenessFixture, ConstantMismatchLowersScore) {
  const Exemplar e = demo_.MakeExemplar();
  const TuplePattern& t1 = e.tuples()[0];  // display 6.2
  // P2 has display 6.3: similarity = 1 - 0.1/range(display).
  const double range = adom_.Range(demo_.graph().schema().LookupAttr("display"));
  const double expected = (NumSimilarity(6.3, 6.2, range) + 1.0 + 1.0) / 3.0;
  EXPECT_NEAR(eval_.ClNodeTuple(demo_.p(2), t1), expected, 1e-12);
  EXPECT_LT(eval_.ClNodeTuple(demo_.p(2), t1), 1.0);
}

TEST_F(ClosenessFixture, MissingAttributeScoresZeroForThatCell) {
  TuplePattern t;
  t.SetConstant(/*attr=*/9999, Value::Num(1));  // attribute no node carries
  EXPECT_DOUBLE_EQ(eval_.ClNodeTuple(demo_.p(1), t), 0.0);
}

TEST_F(ClosenessFixture, EmptyTupleScoresOne) {
  TuplePattern t;
  EXPECT_DOUBLE_EQ(eval_.ClNodeTuple(demo_.p(1), t), 1.0);
}

TEST_F(ClosenessFixture, VsimThresholdGates) {
  const Exemplar e = demo_.MakeExemplar();
  EXPECT_TRUE(eval_.Vsim(demo_.p(3), e.tuples()[0]));
  EXPECT_FALSE(eval_.Vsim(demo_.p(2), e.tuples()[0]));  // display differs

  ClosenessConfig loose;
  loose.theta = 0.9;
  ClosenessEvaluator relaxed(demo_.graph(), adom_, loose);
  EXPECT_TRUE(relaxed.Vsim(demo_.p(2), e.tuples()[0]));
}

TEST_F(ClosenessFixture, ClNodeExemplarTakesBestMatchingTuple) {
  const Exemplar e = demo_.MakeExemplar();
  EXPECT_DOUBLE_EQ(eval_.ClNodeExemplar(demo_.p(3), e), 1.0);  // matches t1
  EXPECT_DOUBLE_EQ(eval_.ClNodeExemplar(demo_.p(4), e), 1.0);  // matches t2
  // P6 (display 5.8) matches neither tuple at θ = 1.
  EXPECT_DOUBLE_EQ(eval_.ClNodeExemplar(demo_.p(6), e), 0.0);
}

}  // namespace
}  // namespace wqe
