// Unit pins for the Q-Chase engine's shared primitives: the one budget
// predicate (engine::WithinBudget), the loop-head deadline poller
// (DeadlineGovernor: first-call poll, stride, latch — the documented
// overshoot bound; the end-to-end bound rides in deadline_test.cc), and the
// two TopK variants the solver bundles configure.

#include "chase/engine.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/timer.h"

namespace wqe::engine {
namespace {

// ---------------------------------------------------------------- WithinBudget

TEST(WithinBudgetTest, ExactBoundaryIsFeasible) {
  EXPECT_TRUE(WithinBudget(3.0, 3.0));
  EXPECT_TRUE(WithinBudget(0.0, 0.0));
  EXPECT_TRUE(WithinBudget(2.0, 3.0));
}

TEST(WithinBudgetTest, EpsilonSlackAbsorbsCostAccumulationNoise) {
  // Summed operator costs may land a rounding error above B; anything within
  // kEps of the boundary still counts as feasible.
  EXPECT_TRUE(WithinBudget(3.0 + 0.5 * kEps, 3.0));
  EXPECT_TRUE(WithinBudget(3.0 + kEps, 3.0));
}

TEST(WithinBudgetTest, BeyondEpsilonIsInfeasible) {
  EXPECT_FALSE(WithinBudget(3.0 + 3.0 * kEps, 3.0));
  EXPECT_FALSE(WithinBudget(3.0001, 3.0));
  EXPECT_FALSE(WithinBudget(1.0, 0.0));
}

// ------------------------------------------------------------ DeadlineGovernor

TEST(DeadlineGovernorTest, StrideConstantPinsTheOvershootBound) {
  // The documented overshoot bound — at most stride-1 iterations between
  // polls — is calibrated for this stride; a change must revisit the
  // DeadlineGovernor comment and deadline_test.cc's end-to-end ceiling.
  EXPECT_EQ(kDeadlineCheckStride, 32u);
}

TEST(DeadlineGovernorTest, FirstCallPollsTheClock) {
  // An already-expired deadline is detected before any work is attempted,
  // whatever the stride.
  Deadline expired = Deadline::After(0.0);
  DeadlineGovernor governor(expired, /*stride=*/1000000);
  EXPECT_TRUE(governor.Expired());
}

TEST(DeadlineGovernorTest, UnarmedDeadlineNeverExpires) {
  Deadline never;
  DeadlineGovernor governor(never, /*stride=*/2);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(governor.Expired());
}

TEST(DeadlineGovernorTest, LatchesOnceExpired) {
  Deadline expired = Deadline::After(0.0);
  DeadlineGovernor governor(expired);
  ASSERT_TRUE(governor.Expired());
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(governor.Expired());
}

TEST(DeadlineGovernorTest, PollsOnlyOnTheStride) {
  constexpr size_t kStride = 8;
  Deadline deadline = Deadline::After(0.05);
  DeadlineGovernor governor(deadline, kStride);
  if (governor.Expired()) GTEST_SKIP() << "machine stalled before first poll";
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  // Calls 2..kStride reuse the stale first poll: the expiry is invisible
  // until the next stride boundary — the engine's bounded overshoot.
  for (size_t call = 2; call <= kStride; ++call) {
    EXPECT_FALSE(governor.Expired()) << "call " << call;
  }
  EXPECT_TRUE(governor.Expired());  // call kStride+1 lands on the stride
}

// ------------------------------------------------------------------------ TopK

EvalResult MakeEval(LabelId label, double cl, double cost,
                    bool satisfies = true) {
  EvalResult eval;
  eval.query.SetFocus(eval.query.AddNode(label));
  eval.cl = cl;
  eval.cost = cost;
  eval.satisfies_exemplar = satisfies;
  return eval;
}

TEST(TopKTest, RejectsSigmaInconsistentAnswers) {
  TopK topk;
  topk.Configure(2, true, true);
  EXPECT_FALSE(topk.Offer(MakeEval(1, 0.9, 1.0, /*satisfies=*/false)));
  EXPECT_EQ(topk.size(), 0u);
}

TEST(TopKTest, ReportsBestImprovementsAndThreshold) {
  TopK topk;
  topk.Configure(2, true, true);
  EXPECT_EQ(topk.PruneThreshold(), -1e18);  // below k answers: no pruning
  EXPECT_TRUE(topk.Offer(MakeEval(1, 0.5, 1.0)));    // first answer improves
  EXPECT_FALSE(topk.Offer(MakeEval(2, 0.3, 1.0)));   // fills k, best unchanged
  EXPECT_TRUE(topk.Offer(MakeEval(3, 0.9, 1.0)));    // new best
  EXPECT_DOUBLE_EQ(topk.BestCloseness(), 0.9);
  // cl(Q*_k): the k-th best closeness once k answers are known.
  EXPECT_DOUBLE_EQ(topk.PruneThreshold(), 0.5);
  EXPECT_EQ(topk.size(), 2u);
}

TEST(TopKTest, AnsWVariantUpdatesDuplicateReachedMoreCheaply) {
  TopK topk;
  topk.Configure(2, /*update_cheaper_duplicate=*/true, /*cost_tiebreak=*/true);
  EXPECT_TRUE(topk.Offer(MakeEval(1, 0.5, 3.0)));
  // Same rewrite, cheaper derivation: not a new answer, but the stored cost
  // drops to the cheaper path.
  EXPECT_FALSE(topk.Offer(MakeEval(1, 0.5, 1.0)));
  std::vector<WhyAnswer> answers = topk.Take();
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_DOUBLE_EQ(answers[0].cost, 1.0);
}

TEST(TopKTest, BeamVariantKeepsFirstDerivation) {
  TopK topk;
  topk.Configure(2, /*update_cheaper_duplicate=*/false, /*cost_tiebreak=*/false);
  EXPECT_TRUE(topk.Offer(MakeEval(1, 0.5, 3.0)));
  EXPECT_FALSE(topk.Offer(MakeEval(1, 0.5, 1.0)));
  std::vector<WhyAnswer> answers = topk.Take();
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_DOUBLE_EQ(answers[0].cost, 3.0);
}

TEST(TopKTest, CostTiebreakRanksEqualClosenessCheapestFirst) {
  TopK with;
  with.Configure(2, true, /*cost_tiebreak=*/true);
  with.Offer(MakeEval(1, 0.5, 3.0));
  with.Offer(MakeEval(2, 0.5, 1.0));
  EXPECT_DOUBLE_EQ(with.Take().front().cost, 1.0);

  TopK without;
  without.Configure(2, false, /*cost_tiebreak=*/false);
  without.Offer(MakeEval(1, 0.5, 3.0));
  without.Offer(MakeEval(2, 0.5, 1.0));
  // Stable: insertion order decides among equal closeness.
  EXPECT_DOUBLE_EQ(without.Take().front().cost, 3.0);
}

}  // namespace
}  // namespace wqe::engine
