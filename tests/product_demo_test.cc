#include "gen/product_demo.h"

#include <gtest/gtest.h>

#include "graph/diameter.h"

namespace wqe {
namespace {

TEST(ProductDemoTest, GraphShape) {
  ProductDemo demo;
  const Graph& g = demo.graph();
  EXPECT_EQ(g.NodesWithLabel(g.schema().LookupLabel("Cellphone")).size(), 6u);
  EXPECT_EQ(g.NodesWithLabel(g.schema().LookupLabel("Carrier")).size(), 2u);
  EXPECT_TRUE(g.finalized());
}

TEST(ProductDemoTest, PhoneAttributesMatchPaper) {
  ProductDemo demo;
  const Graph& g = demo.graph();
  const AttrId display = g.schema().LookupAttr("display");
  const AttrId price = g.schema().LookupAttr("price");
  EXPECT_DOUBLE_EQ(g.attr(demo.p(1), display)->num(), 6.2);
  EXPECT_DOUBLE_EQ(g.attr(demo.p(2), display)->num(), 6.3);
  EXPECT_DOUBLE_EQ(g.attr(demo.p(3), price)->num(), 790);
  EXPECT_LT(g.attr(demo.p(4), price)->num(), 800);  // satisfies c1
}

TEST(ProductDemoTest, CarrierDiscounts) {
  ProductDemo demo;
  const Graph& g = demo.graph();
  const AttrId discount = g.schema().LookupAttr("discount");
  EXPECT_DOUBLE_EQ(g.attr(demo.sprint(), discount)->num(), 25);
  EXPECT_DOUBLE_EQ(g.attr(demo.att(), discount)->num(), 10);
}

TEST(ProductDemoTest, QueryStructure) {
  ProductDemo demo;
  PatternQuery q = demo.Query();
  EXPECT_EQ(q.num_nodes(), 4u);
  EXPECT_EQ(q.num_edges(), 3u);
  EXPECT_EQ(q.focus(), 0u);
  EXPECT_EQ(q.Shape(), QueryShape::kStar);
  const int sensor_edge = q.FindEdge(q.focus(), 3);
  ASSERT_GE(sensor_edge, 0);
  EXPECT_EQ(q.edge(static_cast<size_t>(sensor_edge)).bound, 2u);
}

TEST(ProductDemoTest, ExemplarStructure) {
  ProductDemo demo;
  Exemplar e = demo.MakeExemplar();
  EXPECT_EQ(e.tuples().size(), 2u);
  EXPECT_EQ(e.constraints().size(), 2u);
  EXPECT_EQ(e.constraints()[0].kind, ConstraintLiteral::Kind::kVarConst);
  EXPECT_EQ(e.constraints()[1].kind, ConstraintLiteral::Kind::kVarVar);
}

TEST(ProductDemoTest, DiameterIsSmall) {
  ProductDemo demo;
  const uint32_t d = EstimateDiameter(demo.graph());
  EXPECT_GE(d, 2u);
  EXPECT_LE(d, 6u);
}

}  // namespace
}  // namespace wqe
