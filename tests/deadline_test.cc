// Regression tests for the deadline satellite: solvers must report
// TerminationReason::kDeadline when the clock fires mid-search, keep an
// anytime answer, and bound their overshoot — the periodic checks inside
// star-table materialization and match verification make a single Evaluate
// interruptible instead of running to completion.

#include <gtest/gtest.h>

#include "chase/solve.h"
#include "common/timer.h"
#include "gen/datasets.h"
#include "gen/product_demo.h"
#include "gen/synthetic.h"
#include "workload/why_factory.h"

namespace wqe {
namespace {

TEST(DeadlineTest, ExpiredDeadlineStillYieldsRootAnswer) {
  ProductDemo demo;
  ChaseOptions opts;
  opts.time_limit_seconds = 1e-9;  // expired before the first solver step
  ChaseResult r = Solve(demo.graph(), demo.Question(), opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.termination(), TerminationReason::kDeadline);
  // Anytime contract: the root rewrite (the original question) survives.
  ASSERT_TRUE(r.found());
  EXPECT_EQ(r.best().rewrite.Fingerprint(), demo.Query().Fingerprint());
}

TEST(DeadlineTest, GenerousDeadlineDoesNotFire) {
  ProductDemo demo;
  ChaseOptions opts;
  opts.time_limit_seconds = 60.0;
  opts.max_steps = 50;
  ChaseResult r = Solve(demo.graph(), demo.Question(), opts);
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r.termination(), TerminationReason::kDeadline);
}

TEST(DeadlineTest, ThrowIfExpiredOnlyFiresWhenArmed) {
  Deadline never;  // default: no limit
  EXPECT_NO_THROW(never.ThrowIfExpired());
  Deadline expired = Deadline::After(0.0);
  EXPECT_THROW(expired.ThrowIfExpired(), DeadlineExceeded);
}

/// Overshoot bound: on a graph big enough that a single question takes much
/// longer than the limit, the solver must come back within a small multiple
/// of the limit rather than finishing the stragglers' Evaluate calls.
TEST(DeadlineTest, OvershootIsBoundedOnLargeGraph) {
  Graph g = GenerateGraph(DbpediaLike(0.25));
  WhyFactoryOptions fopts;
  fopts.query.num_edges = 3;
  fopts.query.max_literals = 3;
  fopts.disturb.num_ops = 3;
  fopts.seed = 1;
  std::vector<BenchCase> cases = MakeBenchCases(g, 2, fopts);
  ASSERT_FALSE(cases.empty());

  ChaseOptions opts;
  opts.time_limit_seconds = 0.05;
  opts.max_steps = 1000000;  // deadline, not the step cap, must stop us
  for (const BenchCase& c : cases) {
    Timer timer;
    ChaseResult r = Solve(g, c.question, opts);
    const double elapsed = timer.ElapsedSeconds();
    ASSERT_TRUE(r.ok());
    // Generous ceiling (40x the limit) so slow CI machines pass, yet far
    // below what an unchecked full materialization of this graph takes.
    EXPECT_LT(elapsed, 2.0) << "deadline overshoot";
    if (r.termination() == TerminationReason::kDeadline) {
      EXPECT_TRUE(r.found()) << "anytime answer lost on deadline";
    }
  }
}

TEST(DeadlineTest, HeuristicSolverReportsDeadline) {
  Graph g = GenerateGraph(DbpediaLike(0.25));
  WhyFactoryOptions fopts;
  fopts.seed = 3;
  std::vector<BenchCase> cases = MakeBenchCases(g, 1, fopts);
  ASSERT_FALSE(cases.empty());
  ChaseOptions opts;
  opts.time_limit_seconds = 1e-9;
  opts.beam = 2;
  ChaseResult r = Solve(g, cases[0].question, opts, Algorithm::kAnsHeu);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.termination(), TerminationReason::kDeadline);
  EXPECT_TRUE(r.found());
}

}  // namespace
}  // namespace wqe
