#include "graph/bfs.h"

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"

namespace wqe {
namespace {

// a -> b -> c -> d, a -> d shortcut via e: a -> e, e -> d.
Graph ChainGraph() {
  Graph g;
  for (int i = 0; i < 5; ++i) g.AddNode("N");
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(0, 4);
  g.AddEdge(4, 3);
  g.Finalize();
  return g;
}

TEST(BfsTest, DistanceSelfIsZero) {
  Graph g = ChainGraph();
  BoundedBfs bfs(g);
  EXPECT_EQ(bfs.Distance(0, 0, 0), 0u);
}

TEST(BfsTest, DirectedDistance) {
  Graph g = ChainGraph();
  BoundedBfs bfs(g);
  EXPECT_EQ(bfs.Distance(0, 3, 5), 2u);  // via node 4
  EXPECT_EQ(bfs.Distance(0, 2, 5), 2u);
  EXPECT_EQ(bfs.Distance(3, 0, 5), kInfDist);  // no reverse path
}

TEST(BfsTest, CapRespected) {
  Graph g = ChainGraph();
  BoundedBfs bfs(g);
  EXPECT_EQ(bfs.Distance(0, 3, 1), kInfDist);
  EXPECT_EQ(bfs.Distance(0, 3, 2), 2u);
}

TEST(BfsTest, ForwardVisitsBall) {
  Graph g = ChainGraph();
  BoundedBfs bfs(g);
  std::map<NodeId, uint32_t> seen;
  bfs.Forward(0, 1, [&](NodeId v, uint32_t d) { seen[v] = d; });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], 0u);
  EXPECT_EQ(seen[1], 1u);
  EXPECT_EQ(seen[4], 1u);
}

TEST(BfsTest, BackwardVisitsPredecessors) {
  Graph g = ChainGraph();
  BoundedBfs bfs(g);
  std::map<NodeId, uint32_t> seen;
  bfs.Backward(3, 1, [&](NodeId v, uint32_t d) { seen[v] = d; });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[2], 1u);
  EXPECT_EQ(seen[4], 1u);
}

TEST(BfsTest, UndirectedIgnoresDirection) {
  Graph g = ChainGraph();
  BoundedBfs bfs(g);
  std::map<NodeId, uint32_t> seen;
  bfs.Undirected(3, 1, [&](NodeId v, uint32_t d) { seen[v] = d; });
  EXPECT_EQ(seen.size(), 3u);  // 3 itself, 2 and 4 (in-neighbors)
}

TEST(BfsTest, RepeatedQueriesAreIndependent) {
  Graph g = ChainGraph();
  BoundedBfs bfs(g);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(bfs.Distance(0, 3, 5), 2u);
    EXPECT_EQ(bfs.Distance(1, 3, 5), 2u);
    EXPECT_EQ(bfs.Distance(3, 1, 5), kInfDist);
  }
}

// Property: bidirectional bounded distance equals naive forward BFS on
// random graphs, for all caps.
TEST(BfsTest, MatchesNaiveBfsOnRandomGraphs) {
  Rng rng(123);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g;
    const size_t n = 30;
    for (size_t i = 0; i < n; ++i) g.AddNode("N");
    for (size_t e = 0; e < 70; ++e) {
      NodeId a = static_cast<NodeId>(rng.Index(n));
      NodeId b = static_cast<NodeId>(rng.Index(n));
      if (a != b) g.AddEdge(a, b);
    }
    g.Finalize();
    BoundedBfs bfs(g);

    // Naive distances via Forward sweep.
    for (int probe = 0; probe < 20; ++probe) {
      NodeId s = static_cast<NodeId>(rng.Index(n));
      NodeId t = static_cast<NodeId>(rng.Index(n));
      uint32_t cap = static_cast<uint32_t>(rng.Int(0, 6));
      std::map<NodeId, uint32_t> dist;
      bfs.Forward(s, cap, [&](NodeId v, uint32_t d) { dist[v] = d; });
      const uint32_t expected = dist.count(t) ? dist[t] : kInfDist;
      EXPECT_EQ(bfs.Distance(s, t, cap), expected)
          << "s=" << s << " t=" << t << " cap=" << cap;
    }
  }
}

}  // namespace
}  // namespace wqe
