#include "match/star_table.h"

#include <gtest/gtest.h>

#include "gen/product_demo.h"

namespace wqe {
namespace {

class StarTableFixture : public ::testing::Test {
 protected:
  StarTableFixture() : materializer_(demo_.graph()) {}

  ProductDemo demo_;
  StarMaterializer materializer_;
};

TEST_F(StarTableFixture, FocusStarRowsAreAnswerSuperset) {
  PatternQuery q = demo_.Query();
  auto stars = DecomposeStars(q);
  ASSERT_EQ(stars.size(), 1u);
  auto table = materializer_.Materialize(q, stars[0]);
  // Center = focus: rows must cover {P1, P2, P5} and may not include P3/P4
  // (they fail the price literal so they are not center candidates).
  EXPECT_NE(table->RowOfCenter(demo_.p(1)), nullptr);
  EXPECT_NE(table->RowOfCenter(demo_.p(2)), nullptr);
  EXPECT_NE(table->RowOfCenter(demo_.p(5)), nullptr);
  EXPECT_EQ(table->RowOfCenter(demo_.p(3)), nullptr);
}

TEST_F(StarTableFixture, SpokeMatchesCarryDistances) {
  PatternQuery q = demo_.Query();
  auto stars = DecomposeStars(q);
  auto table = materializer_.Materialize(q, stars[0]);
  const StarRow* row = table->RowOfCenter(demo_.p(1));
  ASSERT_NE(row, nullptr);
  // Find the sensor spoke (bound 2): P1's sensor is at distance 2.
  for (size_t s = 0; s < stars[0].spokes.size(); ++s) {
    if (stars[0].spokes[s].other == 3) {
      ASSERT_EQ(row->spoke_matches[s].size(), 1u);
      EXPECT_EQ(row->spoke_matches[s][0].node, demo_.sensor());
      EXPECT_EQ(row->spoke_matches[s][0].dist, 2u);
    }
  }
}

TEST_F(StarTableFixture, FocusOccurrencesForFocusCenteredStar) {
  PatternQuery q = demo_.Query();
  auto stars = DecomposeStars(q);
  auto table = materializer_.Materialize(q, stars[0]);
  const auto& occ = table->focus_occurrences();
  EXPECT_EQ(occ.size(), 3u);
  EXPECT_TRUE(std::is_sorted(occ.begin(), occ.end()));
}

TEST_F(StarTableFixture, NonViableCentersGetNoRow) {
  // A star requiring a spoke no center can satisfy: Cellphone -> Retailer
  // (label absent from the demo graph).
  const Graph& g = demo_.graph();
  PatternQuery q;
  QNodeId cell = q.AddNode(g.schema().LookupLabel("Cellphone"));
  QNodeId missing = q.AddNode(/*label=*/9999);  // label absent from G
  q.SetFocus(cell);
  q.AddEdge(cell, missing, 1);
  auto stars = DecomposeStars(q);
  auto table = materializer_.Materialize(q, stars[0]);
  EXPECT_EQ(table->num_rows(), 0u);
  EXPECT_TRUE(table->focus_occurrences().empty());
}

TEST_F(StarTableFixture, AugmentedStarTracksFocusInRange) {
  // Chain: Cellphone (focus) -> Carrier, Carrier-centered star is augmented.
  const Graph& g = demo_.graph();
  PatternQuery q;
  QNodeId cell = q.AddNode(g.schema().LookupLabel("Cellphone"));
  QNodeId carrier = q.AddNode(g.schema().LookupLabel("Carrier"));
  QNodeId brand = q.AddNode(g.schema().LookupLabel("Brand"));
  q.SetFocus(cell);
  q.AddEdge(cell, carrier, 1);
  q.AddEdge(cell, brand, 1);

  StarQuery star;
  star.center = carrier;
  star.contains_focus = false;
  star.aug_bound = 1;
  auto table = materializer_.Materialize(q, star);
  EXPECT_GT(table->num_rows(), 0u);
  const StarRow* row = table->RowOfCenter(demo_.sprint());
  ASSERT_NE(row, nullptr);
  EXPECT_FALSE(row->focus_matches.empty());
}

TEST_F(StarTableFixture, OccurrencesPerRole) {
  PatternQuery q = demo_.Query();
  auto stars = DecomposeStars(q);
  auto table = materializer_.Materialize(q, stars[0]);
  EXPECT_EQ(table->center_occurrences().size(), 3u);  // P1, P2, P5
  // Find the carrier spoke of the canonical order.
  for (size_t s = 0; s < stars[0].spokes.size(); ++s) {
    if (stars[0].spokes[s].other == 2) {
      EXPECT_EQ(table->spoke_occurrences(s).size(), 2u);  // both carriers
    }
  }
}

TEST_F(StarTableFixture, SpokeOrderIsCanonicalAcrossEquivalentQueries) {
  // Two structurally identical queries whose node ids differ must decompose
  // to stars with identical signatures and identical spoke order — the view
  // cache shares tables between them by index.
  const Graph& g = demo_.graph();
  PatternQuery a = demo_.Query();

  PatternQuery b;  // same pattern, nodes inserted in a different order
  const QNodeId sensor = b.AddNode(g.schema().LookupLabel("Sensor"));
  const QNodeId carrier = b.AddNode(g.schema().LookupLabel("Carrier"));
  const QNodeId cell = b.AddNode(g.schema().LookupLabel("Cellphone"));
  const QNodeId brand = b.AddNode(g.schema().LookupLabel("Brand"));
  b.SetFocus(cell);
  b.AddLiteral(cell, {g.schema().LookupAttr("price"), CmpOp::kGe, Value::Num(840)});
  b.AddLiteral(brand, {g.schema().LookupAttr("name"), CmpOp::kEq,
                       Value::Str(g.schema().strings().Lookup("Samsung"))});
  b.AddEdge(cell, sensor, 2);
  b.AddEdge(cell, carrier, 1);
  b.AddEdge(cell, brand, 1);

  auto sa = DecomposeStars(a);
  auto sb = DecomposeStars(b);
  ASSERT_EQ(sa.size(), 1u);
  ASSERT_EQ(sb.size(), 1u);
  EXPECT_EQ(sa[0].Signature(a), sb[0].Signature(b));
  // Spoke k of a and spoke k of b map to the same role.
  ASSERT_EQ(sa[0].spokes.size(), sb[0].spokes.size());
  for (size_t s = 0; s < sa[0].spokes.size(); ++s) {
    EXPECT_EQ(a.node(sa[0].spokes[s].other).label,
              b.node(sb[0].spokes[s].other).label);
    EXPECT_EQ(sa[0].spokes[s].bound, sb[0].spokes[s].bound);
  }
}

TEST_F(StarTableFixture, EntryCountReflectsContent) {
  PatternQuery q = demo_.Query();
  auto stars = DecomposeStars(q);
  auto table = materializer_.Materialize(q, stars[0]);
  EXPECT_GT(table->EntryCount(), table->num_rows());
}

}  // namespace
}  // namespace wqe
