#include "match/matcher.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "chase/eval.h"
#include "chase/multi_focus.h"
#include "chase/solve.h"
#include "chase/why_not.h"
#include "gen/datasets.h"
#include "gen/product_demo.h"
#include "gen/synthetic.h"
#include "store/artifact_store.h"
#include "store/serde.h"
#include "workload/suite.h"

namespace wqe {
namespace {

class MatcherFixture : public ::testing::Test {
 protected:
  MatcherFixture() : dist_(demo_.graph()), matcher_(demo_.graph(), &dist_) {}

  ProductDemo demo_;
  DistanceIndex dist_;
  Matcher matcher_;
};

// Example 2.1: Q(Cellphone, G) = {P1, P2, P5}.
TEST_F(MatcherFixture, PaperExampleAnswer) {
  auto answer = matcher_.Answer(demo_.Query());
  std::vector<NodeId> expected = {demo_.p(1), demo_.p(2), demo_.p(5)};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(answer, expected);
}

TEST_F(MatcherFixture, EdgeToPathMatching) {
  // P1 reaches the sensor only through the watch: bound 2 admits it,
  // bound 1 (subgraph-isomorphism semantics) does not.
  PatternQuery q = demo_.Query();
  EXPECT_TRUE(matcher_.IsMatch(q, demo_.p(1)));
  const int e = q.FindEdge(q.focus(), 3);
  ASSERT_GE(e, 0);
  q.edge(static_cast<size_t>(e)).bound = 1;
  EXPECT_FALSE(matcher_.IsMatch(q, demo_.p(1)));
  EXPECT_TRUE(matcher_.IsMatch(q, demo_.p(2)));  // direct sensor edge
}

TEST_F(MatcherFixture, FocusLiteralGatesMatch) {
  PatternQuery q = demo_.Query();
  EXPECT_FALSE(matcher_.IsMatch(q, demo_.p(3)));  // price 790 < 840
  EXPECT_FALSE(matcher_.IsMatch(q, demo_.p(4)));
}

TEST_F(MatcherFixture, InjectivityEnforced) {
  // Two query nodes with the same label must map to distinct graph nodes:
  // a phone with two distinct carriers does not exist.
  const Graph& g = demo_.graph();
  PatternQuery q;
  QNodeId cell = q.AddNode(g.schema().LookupLabel("Cellphone"));
  QNodeId c1 = q.AddNode(g.schema().LookupLabel("Carrier"));
  QNodeId c2 = q.AddNode(g.schema().LookupLabel("Carrier"));
  q.SetFocus(cell);
  q.AddEdge(cell, c1, 1);
  q.AddEdge(cell, c2, 1);
  EXPECT_TRUE(matcher_.Answer(q).empty());
}

TEST_F(MatcherFixture, SingleNodeQueryAnswersAreCandidates) {
  const Graph& g = demo_.graph();
  PatternQuery q;
  QNodeId cell = q.AddNode(g.schema().LookupLabel("Cellphone"));
  q.SetFocus(cell);
  EXPECT_EQ(matcher_.Answer(q).size(), 6u);
}

TEST_F(MatcherFixture, ValuationsEnumerateAssignments) {
  PatternQuery q = demo_.Query();
  size_t count = 0;
  matcher_.Valuations(q, demo_.p(1), 10, [&](const std::vector<NodeId>& assign) {
    ++count;
    EXPECT_EQ(assign[q.focus()], demo_.p(1));
    EXPECT_EQ(assign[1], demo_.samsung());
    EXPECT_EQ(assign[2], demo_.att());
    EXPECT_EQ(assign[3], demo_.sensor());
    return true;
  });
  EXPECT_EQ(count, 1u);
}

TEST_F(MatcherFixture, ValuationsRespectLimit) {
  const Graph& g = demo_.graph();
  PatternQuery q;
  QNodeId cell = q.AddNode(g.schema().LookupLabel("Cellphone"));
  QNodeId any = q.AddNode(kWildcardSymbol);
  q.SetFocus(cell);
  q.AddEdge(cell, any, 2);
  size_t count = 0;
  matcher_.Valuations(q, demo_.p(1), 2,
                      [&](const std::vector<NodeId>&) {
                        ++count;
                        return true;
                      });
  EXPECT_EQ(count, 2u);
}

TEST_F(MatcherFixture, CallbackCanAbort) {
  const Graph& g = demo_.graph();
  PatternQuery q;
  QNodeId cell = q.AddNode(g.schema().LookupLabel("Cellphone"));
  QNodeId any = q.AddNode(kWildcardSymbol);
  q.SetFocus(cell);
  q.AddEdge(cell, any, 2);
  size_t count = 0;
  matcher_.Valuations(q, demo_.p(1), 100,
                      [&](const std::vector<NodeId>&) {
                        ++count;
                        return false;
                      });
  EXPECT_EQ(count, 1u);
}

TEST_F(MatcherFixture, RestrictedMatchHonorsAllowedSets) {
  PatternQuery q = demo_.Query();
  std::vector<const std::vector<NodeId>*> allowed(q.num_nodes(), nullptr);
  // Restrict the carrier node to Sprint only: P1 (AT&T) no longer matches.
  std::vector<NodeId> sprint_only = {demo_.sprint()};
  allowed[2] = &sprint_only;
  EXPECT_FALSE(matcher_.IsMatchRestricted(q, demo_.p(1), allowed));
  EXPECT_TRUE(matcher_.IsMatchRestricted(q, demo_.p(5), allowed));
}

TEST_F(MatcherFixture, DirectionMatters) {
  const Graph& g = demo_.graph();
  PatternQuery q;
  QNodeId carrier = q.AddNode(g.schema().LookupLabel("Carrier"));
  QNodeId cell = q.AddNode(g.schema().LookupLabel("Cellphone"));
  q.SetFocus(carrier);
  // Edge carrier -> cell does not exist in G (phones point at carriers).
  q.AddEdge(carrier, cell, 1);
  EXPECT_TRUE(matcher_.Answer(q).empty());
  // Reversed: every carrier with an in-edge from a phone matches.
  PatternQuery q2;
  QNodeId carrier2 = q2.AddNode(g.schema().LookupLabel("Carrier"));
  QNodeId cell2 = q2.AddNode(g.schema().LookupLabel("Cellphone"));
  q2.SetFocus(carrier2);
  q2.AddEdge(cell2, carrier2, 1);
  EXPECT_EQ(q2.FindEdge(cell2, carrier2), 0);
  EXPECT_EQ(matcher_.Answer(q2).size(), 2u);
}

TEST_F(MatcherFixture, StatsAccumulate) {
  matcher_.Answer(demo_.Query());
  EXPECT_GT(matcher_.stats().focus_verifications, 0u);
  EXPECT_GT(matcher_.stats().node_expansions, 0u);
}

// --- Match pipeline parity (DESIGN.md "Match pipeline"): the compiled
// --- filter-plan pipeline must be an invisible substitution — byte-identical
// --- answers with the pipeline on or off, at any thread count, and whether
// --- the graph is heap-built or mmap-attached from a store v2 bundle.

TEST_F(MatcherFixture, PipelineTogglePreservesAnswers) {
  const Graph& g = demo_.graph();
  PatternQuery wildcard;
  QNodeId any = wildcard.AddNode(kWildcardSymbol);
  wildcard.SetFocus(any);
  wildcard.AddLiteral(
      any, {g.schema().LookupAttr("discount"), CmpOp::kGe, Value::Num(20)});
  for (const PatternQuery& q : {demo_.Query(), wildcard}) {
    matcher_.set_use_pipeline(false);
    const auto interpreted = matcher_.Answer(q);
    matcher_.set_use_pipeline(true);
    const auto compiled = matcher_.Answer(q);
    EXPECT_EQ(interpreted, compiled);
  }
}

ChaseOptions ParityOptions(bool use_pipeline, size_t num_threads) {
  ChaseOptions o;
  o.budget = 3;
  o.max_steps = 2000;
  o.top_k = 2;
  o.num_threads = num_threads;
  o.use_match_pipeline = use_pipeline;
  return o;
}

/// Deterministic fingerprint of everything a ChaseResult reports except
/// wall-clock fields and resource telemetry (mirrors
/// parallel_determinism_test.cc — byte-identity, not tolerance).
std::string ResultFingerprint(const ChaseResult& r) {
  std::ostringstream out;
  out << static_cast<int>(r.termination()) << '|' << r.stats.steps << '|'
      << r.stats.evaluations << '|' << r.stats.ops_generated << '|'
      << r.stats.pruned << '|' << r.cl_star << '\n';
  for (const WhyAnswer& a : r.answers) {
    out << a.fingerprint << '|' << a.cost << '|' << a.closeness << '|'
        << a.satisfies_exemplar << '|';
    for (NodeId v : a.matches) out << v << ',';
    out << '\n';
  }
  return out.str();
}

// Every solver bundle, pipeline on/off, serial and parallel: one contract.
TEST(MatchPipelineParityTest, EveryAlgorithmIdenticalPipelineOnOff) {
  Graph g = GenerateGraph(ImdbLike(0.04));
  WhyFactoryOptions fopts;
  fopts.query.num_edges = 2;
  fopts.query.max_literals = 5;  // literal-heavy: exercise the merged walk
  fopts.disturb.num_ops = 2;
  fopts.seed = 21;
  auto cases = MakeBenchCases(g, 2, fopts);
  ASSERT_FALSE(cases.empty());

  for (const Algorithm algo :
       {Algorithm::kAnsW, Algorithm::kAnsWE, Algorithm::kAnsHeu,
        Algorithm::kFMAnsW, Algorithm::kApxWhyM}) {
    for (const BenchCase& c : cases) {
      const ChaseResult interp =
          Solve(g, c.question, ParityOptions(false, 1), algo);
      ASSERT_TRUE(interp.ok()) << AlgorithmName(algo);
      const std::string want = ResultFingerprint(interp);
      for (const size_t threads : {size_t{1}, size_t{4}}) {
        const ChaseResult piped =
            Solve(g, c.question, ParityOptions(true, threads), algo);
        ASSERT_TRUE(piped.ok()) << AlgorithmName(algo);
        EXPECT_EQ(want, ResultFingerprint(piped))
            << AlgorithmName(algo) << " threads=" << threads;
      }
    }
  }
}

TEST(MatchPipelineParityTest, MultiFocusIdenticalPipelineOnOff) {
  ProductDemo demo;
  MultiFocusQuestion w;
  w.query = demo.Query();
  w.foci = {0, 2};
  w.exemplars.push_back(demo.MakeExemplar());
  std::vector<NodeId> sprint = {demo.sprint()};
  w.exemplars.push_back(Exemplar::FromEntities(demo.graph(), sprint));

  auto run = [&](bool use_pipeline) {
    ChaseOptions o;
    o.budget = 4;
    o.use_match_pipeline = use_pipeline;
    return AnsWMultiFocus(demo.graph(), w, o);
  };
  const MultiFocusResult interp = run(false);
  const MultiFocusResult piped = run(true);
  ASSERT_EQ(interp.answers.size(), piped.answers.size());
  for (size_t i = 0; i < interp.answers.size(); ++i) {
    EXPECT_EQ(interp.answers[i].fingerprint, piped.answers[i].fingerprint);
    EXPECT_EQ(interp.answers[i].total_closeness,
              piped.answers[i].total_closeness);
    EXPECT_EQ(interp.answers[i].matches_per_focus,
              piped.answers[i].matches_per_focus);
  }
  EXPECT_EQ(interp.stats.steps, piped.stats.steps);
  EXPECT_EQ(interp.stats.evaluations, piped.stats.evaluations);
}

TEST(MatchPipelineParityTest, WhyNotIdenticalPipelineOnOff) {
  ProductDemo demo;
  auto explain = [&](bool use_pipeline) {
    ChaseOptions o;
    o.budget = 4;
    o.use_match_pipeline = use_pipeline;
    ChaseContext ctx(demo.graph(), demo.Question(), o);
    return ExplainWhyNot(ctx, demo.p(3)).ToString(demo.graph());
  };
  EXPECT_EQ(explain(false), explain(true));
}

// Heap-built vs mmap-attached (Graph::Attach via the store v2 bundle): the
// pipeline's plans compile from the graph *view*, so the storage substrate
// must not leak into answers either.
class PipelineMmapFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/wqe_pipeline_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
  ProductDemo demo_;
};

TEST_F(PipelineMmapFixture, HeapAndMappedAnswersIdentical) {
  const Graph& g = demo_.graph();
  store::ArtifactStore store(dir_, store::Serde::GraphFingerprint(g));
  GraphIndexes heap(g, /*num_threads=*/1);
  ASSERT_TRUE(store
                  .SaveBundle(g, heap.adom, heap.diameter, heap.dist,
                              DistanceIndex::Options())
                  .ok());
  std::unique_ptr<MappedServingState> mapped;
  ASSERT_TRUE(OpenServingState(store, DistanceIndex::Options(),
                               store::BundleOpenOptions(), &mapped)
                  .ok());
  ASSERT_TRUE(mapped->graph().attached());

  for (const Algorithm algo :
       {Algorithm::kAnsW, Algorithm::kAnsWE, Algorithm::kAnsHeu,
        Algorithm::kFMAnsW, Algorithm::kApxWhyM}) {
    Request req;
    req.question = demo_.Question();
    req.options = ParityOptions(true, 1);
    req.algorithm = algo;
    const Response heap_resp = Execute(g, &heap, nullptr, nullptr, req);
    const Response mapped_resp =
        Execute(mapped->graph(), &mapped->indexes, nullptr, nullptr, req);
    ASSERT_TRUE(heap_resp.ok() && mapped_resp.ok()) << AlgorithmName(algo);
    EXPECT_EQ(ResultFingerprint(heap_resp.result),
              ResultFingerprint(mapped_resp.result))
        << AlgorithmName(algo);
  }
}

}  // namespace
}  // namespace wqe
