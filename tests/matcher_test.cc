#include "match/matcher.h"

#include <gtest/gtest.h>

#include "gen/product_demo.h"

namespace wqe {
namespace {

class MatcherFixture : public ::testing::Test {
 protected:
  MatcherFixture() : dist_(demo_.graph()), matcher_(demo_.graph(), &dist_) {}

  ProductDemo demo_;
  DistanceIndex dist_;
  Matcher matcher_;
};

// Example 2.1: Q(Cellphone, G) = {P1, P2, P5}.
TEST_F(MatcherFixture, PaperExampleAnswer) {
  auto answer = matcher_.Answer(demo_.Query());
  std::vector<NodeId> expected = {demo_.p(1), demo_.p(2), demo_.p(5)};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(answer, expected);
}

TEST_F(MatcherFixture, EdgeToPathMatching) {
  // P1 reaches the sensor only through the watch: bound 2 admits it,
  // bound 1 (subgraph-isomorphism semantics) does not.
  PatternQuery q = demo_.Query();
  EXPECT_TRUE(matcher_.IsMatch(q, demo_.p(1)));
  const int e = q.FindEdge(q.focus(), 3);
  ASSERT_GE(e, 0);
  q.edge(static_cast<size_t>(e)).bound = 1;
  EXPECT_FALSE(matcher_.IsMatch(q, demo_.p(1)));
  EXPECT_TRUE(matcher_.IsMatch(q, demo_.p(2)));  // direct sensor edge
}

TEST_F(MatcherFixture, FocusLiteralGatesMatch) {
  PatternQuery q = demo_.Query();
  EXPECT_FALSE(matcher_.IsMatch(q, demo_.p(3)));  // price 790 < 840
  EXPECT_FALSE(matcher_.IsMatch(q, demo_.p(4)));
}

TEST_F(MatcherFixture, InjectivityEnforced) {
  // Two query nodes with the same label must map to distinct graph nodes:
  // a phone with two distinct carriers does not exist.
  const Graph& g = demo_.graph();
  PatternQuery q;
  QNodeId cell = q.AddNode(g.schema().LookupLabel("Cellphone"));
  QNodeId c1 = q.AddNode(g.schema().LookupLabel("Carrier"));
  QNodeId c2 = q.AddNode(g.schema().LookupLabel("Carrier"));
  q.SetFocus(cell);
  q.AddEdge(cell, c1, 1);
  q.AddEdge(cell, c2, 1);
  EXPECT_TRUE(matcher_.Answer(q).empty());
}

TEST_F(MatcherFixture, SingleNodeQueryAnswersAreCandidates) {
  const Graph& g = demo_.graph();
  PatternQuery q;
  QNodeId cell = q.AddNode(g.schema().LookupLabel("Cellphone"));
  q.SetFocus(cell);
  EXPECT_EQ(matcher_.Answer(q).size(), 6u);
}

TEST_F(MatcherFixture, ValuationsEnumerateAssignments) {
  PatternQuery q = demo_.Query();
  size_t count = 0;
  matcher_.Valuations(q, demo_.p(1), 10, [&](const std::vector<NodeId>& assign) {
    ++count;
    EXPECT_EQ(assign[q.focus()], demo_.p(1));
    EXPECT_EQ(assign[1], demo_.samsung());
    EXPECT_EQ(assign[2], demo_.att());
    EXPECT_EQ(assign[3], demo_.sensor());
    return true;
  });
  EXPECT_EQ(count, 1u);
}

TEST_F(MatcherFixture, ValuationsRespectLimit) {
  const Graph& g = demo_.graph();
  PatternQuery q;
  QNodeId cell = q.AddNode(g.schema().LookupLabel("Cellphone"));
  QNodeId any = q.AddNode(kWildcardSymbol);
  q.SetFocus(cell);
  q.AddEdge(cell, any, 2);
  size_t count = 0;
  matcher_.Valuations(q, demo_.p(1), 2,
                      [&](const std::vector<NodeId>&) {
                        ++count;
                        return true;
                      });
  EXPECT_EQ(count, 2u);
}

TEST_F(MatcherFixture, CallbackCanAbort) {
  const Graph& g = demo_.graph();
  PatternQuery q;
  QNodeId cell = q.AddNode(g.schema().LookupLabel("Cellphone"));
  QNodeId any = q.AddNode(kWildcardSymbol);
  q.SetFocus(cell);
  q.AddEdge(cell, any, 2);
  size_t count = 0;
  matcher_.Valuations(q, demo_.p(1), 100,
                      [&](const std::vector<NodeId>&) {
                        ++count;
                        return false;
                      });
  EXPECT_EQ(count, 1u);
}

TEST_F(MatcherFixture, RestrictedMatchHonorsAllowedSets) {
  PatternQuery q = demo_.Query();
  std::vector<const std::vector<NodeId>*> allowed(q.num_nodes(), nullptr);
  // Restrict the carrier node to Sprint only: P1 (AT&T) no longer matches.
  std::vector<NodeId> sprint_only = {demo_.sprint()};
  allowed[2] = &sprint_only;
  EXPECT_FALSE(matcher_.IsMatchRestricted(q, demo_.p(1), allowed));
  EXPECT_TRUE(matcher_.IsMatchRestricted(q, demo_.p(5), allowed));
}

TEST_F(MatcherFixture, DirectionMatters) {
  const Graph& g = demo_.graph();
  PatternQuery q;
  QNodeId carrier = q.AddNode(g.schema().LookupLabel("Carrier"));
  QNodeId cell = q.AddNode(g.schema().LookupLabel("Cellphone"));
  q.SetFocus(carrier);
  // Edge carrier -> cell does not exist in G (phones point at carriers).
  q.AddEdge(carrier, cell, 1);
  EXPECT_TRUE(matcher_.Answer(q).empty());
  // Reversed: every carrier with an in-edge from a phone matches.
  PatternQuery q2;
  QNodeId carrier2 = q2.AddNode(g.schema().LookupLabel("Carrier"));
  QNodeId cell2 = q2.AddNode(g.schema().LookupLabel("Cellphone"));
  q2.SetFocus(carrier2);
  q2.AddEdge(cell2, carrier2, 1);
  EXPECT_EQ(q2.FindEdge(cell2, carrier2), 0);
  EXPECT_EQ(matcher_.Answer(q2).size(), 2u);
}

TEST_F(MatcherFixture, StatsAccumulate) {
  matcher_.Answer(demo_.Query());
  EXPECT_GT(matcher_.stats().focus_verifications, 0u);
  EXPECT_GT(matcher_.stats().node_expansions, 0u);
}

}  // namespace
}  // namespace wqe
