#include "query/literal.h"

#include <gtest/gtest.h>

namespace wqe {
namespace {

TEST(EvalCmpTest, NumericComparisons) {
  EXPECT_TRUE(EvalCmp(Value::Num(1), CmpOp::kLt, Value::Num(2)));
  EXPECT_FALSE(EvalCmp(Value::Num(2), CmpOp::kLt, Value::Num(2)));
  EXPECT_TRUE(EvalCmp(Value::Num(2), CmpOp::kLe, Value::Num(2)));
  EXPECT_TRUE(EvalCmp(Value::Num(2), CmpOp::kEq, Value::Num(2)));
  EXPECT_TRUE(EvalCmp(Value::Num(2), CmpOp::kGe, Value::Num(2)));
  EXPECT_FALSE(EvalCmp(Value::Num(2), CmpOp::kGt, Value::Num(2)));
  EXPECT_TRUE(EvalCmp(Value::Num(3), CmpOp::kGt, Value::Num(2)));
}

TEST(EvalCmpTest, CategoricalOnlyEquality) {
  EXPECT_TRUE(EvalCmp(Value::Str(5), CmpOp::kEq, Value::Str(5)));
  EXPECT_FALSE(EvalCmp(Value::Str(5), CmpOp::kEq, Value::Str(6)));
  // Ordered operators on categorical values are false (incomparable).
  EXPECT_FALSE(EvalCmp(Value::Str(5), CmpOp::kLt, Value::Str(6)));
  EXPECT_FALSE(EvalCmp(Value::Str(6), CmpOp::kGt, Value::Str(5)));
}

TEST(EvalCmpTest, MixedKindsAreFalse) {
  EXPECT_FALSE(EvalCmp(Value::Num(5), CmpOp::kEq, Value::Str(5)));
  EXPECT_FALSE(EvalCmp(Value::Null(), CmpOp::kEq, Value::Null()));
}

TEST(LiteralTest, MatchesRequiresAttribute) {
  Graph g;
  NodeId a = g.AddNode("A");
  g.SetNum(a, "price", 840);
  g.Finalize();
  const AttrId price = g.schema().LookupAttr("price");
  const AttrId missing = g.schema().InternAttr("missing");

  Literal ge{price, CmpOp::kGe, Value::Num(800)};
  EXPECT_TRUE(ge.Matches(g, a));
  Literal gt{price, CmpOp::kGt, Value::Num(840)};
  EXPECT_FALSE(gt.Matches(g, a));
  Literal on_missing{missing, CmpOp::kGe, Value::Num(0)};
  EXPECT_FALSE(on_missing.Matches(g, a));
}

TEST(LiteralTest, WildcardMatchesAnyValue) {
  Graph g;
  NodeId a = g.AddNode("A");
  g.SetNum(a, "x", 1);
  NodeId b = g.AddNode("A");
  g.Finalize();
  const AttrId x = g.schema().LookupAttr("x");
  Literal any{x, CmpOp::kEq, Value::Null()};
  EXPECT_TRUE(any.is_wildcard());
  EXPECT_TRUE(any.Matches(g, a));
  EXPECT_FALSE(any.Matches(g, b));  // b lacks the attribute entirely
}

TEST(LiteralTest, EqualityOperator) {
  Literal a{1, CmpOp::kGe, Value::Num(5)};
  Literal b{1, CmpOp::kGe, Value::Num(5)};
  Literal c{1, CmpOp::kGt, Value::Num(5)};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(LiteralTest, ToStringFormats) {
  Schema schema;
  const AttrId price = schema.InternAttr("price");
  Literal l{price, CmpOp::kGe, Value::Num(840)};
  EXPECT_EQ(l.ToString(schema), "price >= 840");
  Literal w{price, CmpOp::kEq, Value::Null()};
  EXPECT_EQ(w.ToString(schema), "price exists");
}

TEST(CmpOpTest, Names) {
  EXPECT_STREQ(CmpOpName(CmpOp::kLt), "<");
  EXPECT_STREQ(CmpOpName(CmpOp::kLe), "<=");
  EXPECT_STREQ(CmpOpName(CmpOp::kEq), "=");
  EXPECT_STREQ(CmpOpName(CmpOp::kGe), ">=");
  EXPECT_STREQ(CmpOpName(CmpOp::kGt), ">");
}

}  // namespace
}  // namespace wqe
