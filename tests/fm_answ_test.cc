#include "chase/fm_answ.h"

#include <gtest/gtest.h>

#include "chase/answ.h"
#include "gen/product_demo.h"

namespace wqe {
namespace {

TEST(FMAnsWTest, ProducesAnAnswerOnDemo) {
  ProductDemo demo;
  ChaseOptions opts;
  opts.budget = 4;
  ChaseResult r = FMAnsW(demo.graph(), demo.Question(), opts);
  ASSERT_TRUE(r.found());
  EXPECT_GE(r.best().closeness, 0.0);
}

TEST(FMAnsWTest, NeverBeatsAnsW) {
  ProductDemo demo;
  ChaseOptions opts;
  opts.budget = 4;
  const double exact =
      AnsW(demo.graph(), demo.Question(), opts).best().closeness;
  const double baseline =
      FMAnsW(demo.graph(), demo.Question(), opts).best().closeness;
  EXPECT_LE(baseline, exact + 1e-9);
}

TEST(FMAnsWTest, MinedQueryIsFocusStar) {
  ProductDemo demo;
  ChaseOptions opts;
  opts.budget = 4;
  ChaseResult r = FMAnsW(demo.graph(), demo.Question(), opts);
  const PatternQuery& q = r.best().rewrite;
  // Suggested rewrites are stars around the focus (or the original query).
  const QueryShape shape = q.Shape();
  EXPECT_TRUE(shape == QueryShape::kStar || shape == QueryShape::kChain)
      << QueryShapeName(shape);
}

TEST(FMAnsWTest, RespectsBudget) {
  ProductDemo demo;
  ChaseOptions opts;
  opts.budget = 2;
  ChaseResult r = FMAnsW(demo.graph(), demo.Question(), opts);
  EXPECT_LE(r.best().cost, 2.0 + 1e-9);
}

TEST(FMAnsWTest, StepsReflectEnumerationEffort) {
  ProductDemo demo;
  ChaseOptions opts;
  opts.budget = 4;
  ChaseResult r = FMAnsW(demo.graph(), demo.Question(), opts);
  EXPECT_GT(r.stats.steps, 0u);
}

}  // namespace
}  // namespace wqe
