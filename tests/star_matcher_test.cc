#include "match/star_matcher.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gen/datasets.h"
#include "gen/product_demo.h"
#include "gen/synthetic.h"
#include "workload/query_gen.h"

namespace wqe {
namespace {

TEST(StarMatcherTest, MatchesDirectMatcherOnProductDemo) {
  ProductDemo demo;
  DistanceIndex dist(demo.graph());
  StarMatcher star_matcher(demo.graph(), &dist, nullptr);
  Matcher direct(demo.graph(), &dist);
  const PatternQuery q = demo.Query();
  EXPECT_EQ(star_matcher.Evaluate(q).matches, direct.Answer(q));
}

TEST(StarMatcherTest, CacheHitsOnRepeatedEvaluation) {
  ProductDemo demo;
  DistanceIndex dist(demo.graph());
  ViewCache cache;
  StarMatcher sm(demo.graph(), &dist, &cache);
  const PatternQuery q = demo.Query();
  sm.Evaluate(q);
  EXPECT_EQ(sm.stats().cache_hits, 0u);
  sm.Evaluate(q);
  EXPECT_GT(sm.stats().cache_hits, 0u);
  EXPECT_EQ(sm.stats().tables_built, 1u);
}

TEST(StarMatcherTest, CacheReusedAcrossSimilarRewrites) {
  // Changing a literal on the focus only invalidates the focus star; in the
  // product query there is a single star, so a two-star chain query shows
  // partial reuse instead.
  ProductDemo demo;
  const Graph& g = demo.graph();
  DistanceIndex dist(g);
  ViewCache cache;
  StarMatcher sm(g, &dist, &cache);

  PatternQuery q;
  QNodeId cell = q.AddNode(g.schema().LookupLabel("Cellphone"));
  QNodeId carrier = q.AddNode(g.schema().LookupLabel("Carrier"));
  QNodeId brand = q.AddNode(g.schema().LookupLabel("Brand"));
  QNodeId watch = q.AddNode(g.schema().LookupLabel("Accessory"));
  q.SetFocus(cell);
  q.AddEdge(cell, carrier, 1);
  q.AddEdge(cell, brand, 1);
  q.AddEdge(cell, watch, 1);
  sm.Evaluate(q);
  const uint64_t built_before = sm.stats().tables_built;

  // Rewrite touching only the carrier's literals leaves other stars' keys
  // intact... with a single focus-centered star the whole table rebuilds;
  // verify the cache at least serves the unchanged original query.
  PatternQuery q2 = q;
  q2.AddLiteral(carrier, {g.schema().LookupAttr("discount"), CmpOp::kGe,
                          Value::Num(20)});
  sm.Evaluate(q2);
  sm.Evaluate(q);
  EXPECT_EQ(sm.stats().tables_built, built_before + 1);
  EXPECT_GT(sm.stats().cache_hits, 0u);
}

TEST(StarMatcherTest, PriorityOrdersVerificationNotResult) {
  ProductDemo demo;
  DistanceIndex dist(demo.graph());
  StarMatcher sm(demo.graph(), &dist, nullptr);
  std::function<double(NodeId)> priority = [&](NodeId v) {
    return v == demo.p(5) ? 1.0 : 0.0;
  };
  auto eval = sm.Evaluate(demo.Query(), &priority);
  // Result is the same sorted answer regardless of verification order.
  Matcher direct(demo.graph(), &dist);
  EXPECT_EQ(eval.matches, direct.Answer(demo.Query()));
}

// The central correctness property of the optimization (§5.2): star-view
// evaluation computes exactly Q(G) — on random synthetic graphs and
// generated queries of every shape.
class StarMatcherEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(StarMatcherEquivalenceTest, AgreesWithDirectMatcher) {
  GraphSpec spec = ImdbLike(0.02, 40 + static_cast<uint64_t>(GetParam()));
  Graph g = GenerateGraph(spec);
  DistanceIndex dist(g);
  Matcher direct(g, &dist);
  ViewCache cache;
  StarMatcher sm(g, &dist, &cache);

  size_t generated = 0;
  for (int i = 0; i < 12; ++i) {
    QueryGenOptions qopts;
    qopts.seed = static_cast<uint64_t>(GetParam()) * 1000 + static_cast<uint64_t>(i);
    qopts.num_edges = 1 + static_cast<size_t>(i % 4);
    qopts.min_answers = 1;
    auto q = GenerateGroundTruthQuery(g, direct, qopts);
    if (!q.has_value()) continue;
    ++generated;
    EXPECT_EQ(sm.Evaluate(*q).matches, direct.Answer(*q))
        << "seed=" << qopts.seed;
  }
  EXPECT_GT(generated, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StarMatcherEquivalenceTest,
                         ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace wqe
