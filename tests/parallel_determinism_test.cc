// The parallel evaluation layer's core contract: AnsW with num_threads > 1
// returns *byte-identical* results to the serial path — same rewrites, same
// answer sets, same closeness — because all parallel stages write
// index-addressed slots and reduce in a fixed order (DESIGN.md "Parallel
// execution"). Checked end-to-end across several workload seeds, plus the
// parallel distance-index build against the serial labeling.

#include <gtest/gtest.h>

#include "chase/answ.h"
#include "gen/datasets.h"
#include "gen/synthetic.h"
#include "graph/distance_index.h"
#include "workload/suite.h"

namespace wqe {
namespace {

ChaseOptions BaseOptions(size_t num_threads) {
  ChaseOptions o;
  o.budget = 3;
  o.max_steps = 2000;
  o.top_k = 2;
  o.num_threads = num_threads;
  return o;
}

// Runs AnsW on every case and snapshots everything an answer reports.
struct RunSnapshot {
  std::vector<std::string> fingerprints;
  std::vector<std::vector<NodeId>> matches;
  std::vector<double> closeness;
  std::vector<double> costs;
};

RunSnapshot RunAll(const Graph& g, const std::vector<BenchCase>& cases,
                   size_t num_threads) {
  RunSnapshot snap;
  GraphIndexes indexes(g, num_threads);
  for (const BenchCase& c : cases) {
    ChaseContext ctx(g, &indexes, c.question, BaseOptions(num_threads));
    ChaseResult r = AnsWWithContext(ctx);
    for (const WhyAnswer& a : r.answers) {
      snap.fingerprints.push_back(a.rewrite.Fingerprint());
      snap.matches.push_back(a.matches);
      snap.closeness.push_back(a.closeness);
      snap.costs.push_back(a.cost);
    }
  }
  return snap;
}

TEST(ParallelDeterminismTest, AnsWIdenticalAcrossThreadCounts) {
  Graph g = GenerateGraph(ImdbLike(0.04));
  for (const uint64_t seed : {7u, 77u, 777u}) {
    WhyFactoryOptions opts;
    opts.query.num_edges = 2;
    opts.disturb.num_ops = 2;
    opts.seed = seed;
    auto cases = MakeBenchCases(g, 3, opts);
    ASSERT_FALSE(cases.empty()) << "seed=" << seed;

    const RunSnapshot serial = RunAll(g, cases, 1);
    const RunSnapshot parallel = RunAll(g, cases, 4);
    EXPECT_EQ(serial.fingerprints, parallel.fingerprints) << "seed=" << seed;
    EXPECT_EQ(serial.matches, parallel.matches) << "seed=" << seed;
    // Byte-identical contract: exact double equality, no tolerance.
    EXPECT_EQ(serial.closeness, parallel.closeness) << "seed=" << seed;
    EXPECT_EQ(serial.costs, parallel.costs) << "seed=" << seed;
  }
}

TEST(ParallelDeterminismTest, HardwareConcurrencySettingMatchesSerial) {
  Graph g = GenerateGraph(DbpediaLike(0.04));
  WhyFactoryOptions opts;
  opts.query.num_edges = 2;
  opts.disturb.num_ops = 2;
  opts.seed = 5;
  auto cases = MakeBenchCases(g, 2, opts);
  ASSERT_FALSE(cases.empty());

  const RunSnapshot serial = RunAll(g, cases, 1);
  const RunSnapshot parallel = RunAll(g, cases, 0);  // 0 = hardware
  EXPECT_EQ(serial.fingerprints, parallel.fingerprints);
  EXPECT_EQ(serial.matches, parallel.matches);
  EXPECT_EQ(serial.closeness, parallel.closeness);
}

TEST(ParallelDeterminismTest, ParallelDistanceIndexBuildMatchesSerial) {
  Graph g = GenerateGraph(ImdbLike(0.05));
  DistanceIndex::Options serial_opts;
  DistanceIndex::Options parallel_opts;
  parallel_opts.num_threads = 4;
  DistanceIndex serial(g, serial_opts);
  DistanceIndex parallel(g, parallel_opts);
  for (NodeId u = 0; u < g.num_nodes(); u += 3) {
    for (NodeId v = 0; v < g.num_nodes(); v += 5) {
      ASSERT_EQ(serial.Distance(u, v, 6), parallel.Distance(u, v, 6))
          << "u=" << u << " v=" << v;
    }
  }
}

}  // namespace
}  // namespace wqe
