// The parallel evaluation layer's core contract: AnsW with num_threads > 1
// returns *byte-identical* results to the serial path — same rewrites, same
// answer sets, same closeness — because all parallel stages write
// index-addressed slots and reduce in a fixed order (DESIGN.md "Parallel
// execution"). Checked end-to-end across several workload seeds, plus the
// parallel distance-index build against the serial labeling.

#include <gtest/gtest.h>

#include <sstream>

#include "chase/answ.h"
#include "chase/multi_focus.h"
#include "chase/solve.h"
#include "chase/why_not.h"
#include "gen/datasets.h"
#include "gen/product_demo.h"
#include "gen/synthetic.h"
#include "graph/distance_index.h"
#include "workload/suite.h"

namespace wqe {
namespace {

ChaseOptions BaseOptions(size_t num_threads) {
  ChaseOptions o;
  o.budget = 3;
  o.max_steps = 2000;
  o.top_k = 2;
  o.num_threads = num_threads;
  return o;
}

// Runs AnsW on every case and snapshots everything an answer reports.
struct RunSnapshot {
  std::vector<std::string> fingerprints;
  std::vector<std::vector<NodeId>> matches;
  std::vector<double> closeness;
  std::vector<double> costs;
};

RunSnapshot RunAll(const Graph& g, const std::vector<BenchCase>& cases,
                   size_t num_threads) {
  RunSnapshot snap;
  GraphIndexes indexes(g, num_threads);
  for (const BenchCase& c : cases) {
    ChaseContext ctx(g, &indexes, c.question, BaseOptions(num_threads));
    ChaseResult r = AnsWWithContext(ctx);
    for (const WhyAnswer& a : r.answers) {
      snap.fingerprints.push_back(a.rewrite.Fingerprint());
      snap.matches.push_back(a.matches);
      snap.closeness.push_back(a.closeness);
      snap.costs.push_back(a.cost);
    }
  }
  return snap;
}

TEST(ParallelDeterminismTest, AnsWIdenticalAcrossThreadCounts) {
  Graph g = GenerateGraph(ImdbLike(0.04));
  for (const uint64_t seed : {7u, 77u, 777u}) {
    WhyFactoryOptions opts;
    opts.query.num_edges = 2;
    opts.disturb.num_ops = 2;
    opts.seed = seed;
    auto cases = MakeBenchCases(g, 3, opts);
    ASSERT_FALSE(cases.empty()) << "seed=" << seed;

    const RunSnapshot serial = RunAll(g, cases, 1);
    const RunSnapshot parallel = RunAll(g, cases, 4);
    EXPECT_EQ(serial.fingerprints, parallel.fingerprints) << "seed=" << seed;
    EXPECT_EQ(serial.matches, parallel.matches) << "seed=" << seed;
    // Byte-identical contract: exact double equality, no tolerance.
    EXPECT_EQ(serial.closeness, parallel.closeness) << "seed=" << seed;
    EXPECT_EQ(serial.costs, parallel.costs) << "seed=" << seed;
  }
}

TEST(ParallelDeterminismTest, HardwareConcurrencySettingMatchesSerial) {
  Graph g = GenerateGraph(DbpediaLike(0.04));
  WhyFactoryOptions opts;
  opts.query.num_edges = 2;
  opts.disturb.num_ops = 2;
  opts.seed = 5;
  auto cases = MakeBenchCases(g, 2, opts);
  ASSERT_FALSE(cases.empty());

  const RunSnapshot serial = RunAll(g, cases, 1);
  const RunSnapshot parallel = RunAll(g, cases, 0);  // 0 = hardware
  EXPECT_EQ(serial.fingerprints, parallel.fingerprints);
  EXPECT_EQ(serial.matches, parallel.matches);
  EXPECT_EQ(serial.closeness, parallel.closeness);
}

/// Deterministic fingerprint of everything a ChaseResult reports except
/// wall-clock fields (elapsed, phases) and resource telemetry.
std::string ResultFingerprint(const ChaseResult& r) {
  std::ostringstream out;
  out << static_cast<int>(r.termination()) << '|' << r.stats.steps << '|'
      << r.stats.evaluations << '|' << r.stats.ops_generated << '|'
      << r.stats.pruned << '|' << r.cl_star << '\n';
  for (const WhyAnswer& a : r.answers) {
    out << a.fingerprint << '|' << a.cost << '|' << a.closeness << '|'
        << a.satisfies_exemplar << '|';
    for (NodeId v : a.matches) out << v << ',';
    out << '\n';
  }
  return out.str();
}

// The engine contract across ALL solver bundles: the policy-driven chase is
// byte-identical whatever the verification/materialization thread count.
TEST(ParallelDeterminismTest, EveryAlgorithmIdenticalAcrossThreadCounts) {
  Graph g = GenerateGraph(ImdbLike(0.04));
  WhyFactoryOptions fopts;
  fopts.query.num_edges = 2;
  fopts.disturb.num_ops = 2;
  fopts.seed = 11;
  auto cases = MakeBenchCases(g, 2, fopts);
  ASSERT_FALSE(cases.empty());

  for (const Algorithm algo :
       {Algorithm::kAnsW, Algorithm::kAnsWE, Algorithm::kAnsHeu,
        Algorithm::kFMAnsW, Algorithm::kApxWhyM}) {
    for (const BenchCase& c : cases) {
      ChaseResult serial = Solve(g, c.question, BaseOptions(1), algo);
      ChaseResult parallel = Solve(g, c.question, BaseOptions(4), algo);
      ASSERT_TRUE(serial.ok() && parallel.ok()) << AlgorithmName(algo);
      EXPECT_EQ(ResultFingerprint(serial), ResultFingerprint(parallel))
          << AlgorithmName(algo);
    }
  }
}

TEST(ParallelDeterminismTest, MultiFocusIdenticalAcrossThreadCounts) {
  ProductDemo demo;
  MultiFocusQuestion w;
  w.query = demo.Query();
  w.foci = {0, 2};
  w.exemplars.push_back(demo.MakeExemplar());
  std::vector<NodeId> sprint = {demo.sprint()};
  w.exemplars.push_back(Exemplar::FromEntities(demo.graph(), sprint));

  auto run = [&](size_t threads) {
    ChaseOptions o;
    o.budget = 4;
    o.num_threads = threads;
    return AnsWMultiFocus(demo.graph(), w, o);
  };
  const MultiFocusResult serial = run(1);
  const MultiFocusResult parallel = run(4);
  ASSERT_EQ(serial.answers.size(), parallel.answers.size());
  for (size_t i = 0; i < serial.answers.size(); ++i) {
    EXPECT_EQ(serial.answers[i].fingerprint, parallel.answers[i].fingerprint);
    EXPECT_EQ(serial.answers[i].total_closeness,
              parallel.answers[i].total_closeness);
    EXPECT_EQ(serial.answers[i].matches_per_focus,
              parallel.answers[i].matches_per_focus);
  }
  EXPECT_EQ(serial.stats.steps, parallel.stats.steps);
  EXPECT_EQ(serial.stats.evaluations, parallel.stats.evaluations);
}

TEST(ParallelDeterminismTest, WhyNotIdenticalAcrossThreadCounts) {
  ProductDemo demo;
  auto explain = [&](size_t threads) {
    ChaseOptions o;
    o.budget = 4;
    o.num_threads = threads;
    ChaseContext ctx(demo.graph(), demo.Question(), o);
    return ExplainWhyNot(ctx, demo.p(3)).ToString(demo.graph());
  };
  EXPECT_EQ(explain(1), explain(4));
}

TEST(ParallelDeterminismTest, ParallelDistanceIndexBuildMatchesSerial) {
  Graph g = GenerateGraph(ImdbLike(0.05));
  DistanceIndex::Options serial_opts;
  DistanceIndex::Options parallel_opts;
  parallel_opts.num_threads = 4;
  DistanceIndex serial(g, serial_opts);
  DistanceIndex parallel(g, parallel_opts);
  for (NodeId u = 0; u < g.num_nodes(); u += 3) {
    for (NodeId v = 0; v < g.num_nodes(); v += 5) {
      ASSERT_EQ(serial.Distance(u, v, 6), parallel.Distance(u, v, 6))
          << "u=" << u << " v=" << v;
    }
  }
}

}  // namespace
}  // namespace wqe
