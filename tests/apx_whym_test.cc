#include "chase/apx_whym.h"

#include <gtest/gtest.h>

#include "gen/product_demo.h"

namespace wqe {
namespace {

// A Why-Many setup: relax the demo query so it returns too many phones,
// and ask for refinements toward the exemplar.
WhyQuestion ManyQuestion(const ProductDemo& demo) {
  WhyQuestion w = demo.Question();
  // Drop the price literal so P1..P5 all match (P6 has no sensor/carrier
  // combo that survives... it has a carrier but no sensor).
  w.query.node(w.query.focus()).literals.clear();
  return w;
}

TEST(ApxWhyMTest, RefinesAwayIrrelevantMatches) {
  ProductDemo demo;
  ChaseOptions opts;
  opts.budget = 3;
  ChaseResult r = ApxWhyM(demo.graph(), ManyQuestion(demo), opts);
  ASSERT_TRUE(r.found());
  // All applied operators must be refinements.
  for (const Op& op : r.best().ops.ops()) {
    EXPECT_TRUE(op.is_refine()) << op.ToString(demo.graph().schema());
  }
  EXPECT_LE(r.best().cost, 3.0 + 1e-9);
}

TEST(ApxWhyMTest, ClosenessNeverDropsBelowOriginal) {
  ProductDemo demo;
  ChaseOptions opts;
  opts.budget = 3;
  WhyQuestion w = ManyQuestion(demo);
  ChaseContext probe(demo.graph(), w, opts);
  const double original = probe.root()->cl;
  ChaseResult r = ApxWhyM(demo.graph(), w, opts);
  EXPECT_GE(r.best().closeness + 1e-9, original);
}

TEST(ApxWhyMTest, RemovesAtLeastOneIrrelevantMatchOnDemo) {
  ProductDemo demo;
  ChaseOptions opts;
  opts.budget = 3;
  WhyQuestion w = ManyQuestion(demo);
  ChaseContext probe(demo.graph(), w, opts);
  const size_t im_before = probe.root()->rel.im.size();
  ASSERT_GT(im_before, 0u);

  ChaseResult r = ApxWhyM(demo.graph(), w, opts);
  size_t im_after = 0;
  for (NodeId v : r.best().matches) {
    if (!probe.rep().Contains(v)) ++im_after;
  }
  EXPECT_LT(im_after, im_before);
}

TEST(ApxWhyMTest, ZeroBudgetReturnsOriginal) {
  ProductDemo demo;
  ChaseOptions opts;
  opts.budget = 0.5;  // below any operator cost
  ChaseResult r = ApxWhyM(demo.graph(), ManyQuestion(demo), opts);
  ASSERT_TRUE(r.found());
  EXPECT_TRUE(r.best().ops.empty());
}

TEST(ApxWhyMTest, NoIrrelevantMatchesMeansNoOps) {
  // Exemplar covering every match leaves nothing to refine away.
  ProductDemo demo;
  WhyQuestion w = demo.Question();
  std::vector<NodeId> all = {demo.p(1), demo.p(2), demo.p(5)};
  w.exemplar = Exemplar::FromEntities(demo.graph(), all);
  ChaseOptions opts;
  opts.budget = 3;
  ChaseResult r = ApxWhyM(demo.graph(), w, opts);
  ASSERT_TRUE(r.found());
  EXPECT_TRUE(r.best().ops.empty());
}

}  // namespace
}  // namespace wqe
