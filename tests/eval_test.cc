#include "chase/eval.h"

#include <gtest/gtest.h>

#include "chase/next_op.h"
#include "gen/product_demo.h"

namespace wqe {
namespace {

class EvalFixture : public ::testing::Test {
 protected:
  EvalFixture() {
    opts_.budget = 4;
    ctx_ = std::make_unique<ChaseContext>(demo_.graph(), demo_.Question(), opts_);
  }

  ProductDemo demo_;
  ChaseOptions opts_;
  std::unique_ptr<ChaseContext> ctx_;
};

TEST_F(EvalFixture, RootEvaluatesOriginalQuery) {
  const auto& root = ctx_->root();
  EXPECT_EQ(root->matches.size(), 3u);
  EXPECT_DOUBLE_EQ(root->cost, 0.0);
  EXPECT_FALSE(root->refined);
  EXPECT_TRUE(root->ops.empty());
}

TEST_F(EvalFixture, UniverseIsFocusLabelClass) {
  EXPECT_EQ(ctx_->focus_universe().size(), 6u);  // six cellphones
}

TEST_F(EvalFixture, RepAndClStarMatchPaperExample) {
  EXPECT_EQ(ctx_->rep().nodes.size(), 3u);
  EXPECT_NEAR(ctx_->cl_star(), 0.5, 1e-9);
}

TEST_F(EvalFixture, RootClosenessMatchesHandComputation) {
  // RM = {P5} (cl 1), IM = {P1, P2}: (1 - 2) / 6.
  EXPECT_NEAR(ctx_->root()->cl, -1.0 / 6.0, 1e-9);
  EXPECT_NEAR(ctx_->root()->cl_plus, 1.0 / 6.0, 1e-9);
  EXPECT_FALSE(ctx_->root()->satisfies_exemplar);
}

TEST_F(EvalFixture, MemoizationAvoidsReEvaluation) {
  const uint64_t evals_before = ctx_->stats().evaluations;
  ctx_->Evaluate(ctx_->root()->query, OpSequence());
  EXPECT_EQ(ctx_->stats().evaluations, evals_before);
  EXPECT_GT(ctx_->stats().memo_hits, 0u);
}

TEST_F(EvalFixture, MemoDisabledReEvaluates) {
  ChaseOptions no_memo = opts_;
  no_memo.use_memo = false;
  ChaseContext ctx(demo_.graph(), demo_.Question(), no_memo);
  const uint64_t evals_before = ctx.stats().evaluations;
  ctx.Evaluate(ctx.root()->query, OpSequence());
  EXPECT_EQ(ctx.stats().evaluations, evals_before + 1);
}

TEST_F(EvalFixture, CostComputedFromOps) {
  const Schema& schema = demo_.graph().schema();
  PatternQuery q = ctx_->root()->query;
  Op rml;
  rml.kind = OpKind::kRmL;
  rml.u = 0;
  rml.lit = {schema.LookupAttr("price"), CmpOp::kGe, Value::Num(840)};
  ASSERT_TRUE(Apply(rml, &q, opts_.max_bound));
  OpSequence ops;
  ops.Append(rml);
  auto eval = ctx_->Evaluate(q, ops);
  EXPECT_NEAR(eval->cost, 1.0, 1e-9);
  EXPECT_FALSE(eval->refined);
}

TEST_F(EvalFixture, RefinedFlagSetByRefinementOps) {
  const Schema& schema = demo_.graph().schema();
  PatternQuery q = ctx_->root()->query;
  Op addl;
  addl.kind = OpKind::kAddL;
  addl.u = 2;
  addl.lit = {schema.LookupAttr("discount"), CmpOp::kEq, Value::Num(25)};
  ASSERT_TRUE(Apply(addl, &q, opts_.max_bound));
  OpSequence ops;
  ops.Append(addl);
  EXPECT_TRUE(ctx_->Evaluate(q, ops)->refined);
}

TEST_F(EvalFixture, BorrowedIndexesShareAcrossContexts) {
  GraphIndexes indexes(demo_.graph());
  ChaseContext a(demo_.graph(), &indexes, demo_.Question(), opts_);
  ChaseContext b(demo_.graph(), &indexes, demo_.Question(), opts_);
  EXPECT_EQ(&a.adom(), &b.adom());
  EXPECT_EQ(a.diameter(), b.diameter());
  EXPECT_EQ(a.root()->matches, b.root()->matches);
}

TEST_F(EvalFixture, TimeLimitArmsFreshDeadlinePerContext) {
  ChaseOptions limited = opts_;
  limited.time_limit_seconds = 60.0;
  ChaseContext ctx(demo_.graph(), demo_.Question(), limited);
  EXPECT_FALSE(ctx.options().deadline.Expired());
}

// ---- NextOp condition gating (Fig 7 / §5.4).

TEST_F(EvalFixture, NextOpGeneratesBothPhasesAtRoot) {
  ChaseNode node;
  node.eval = ctx_->root();
  GenerateOps(*ctx_, node, /*best_cl=*/-1e18, 0, nullptr);
  bool has_relax = false, has_refine = false;
  while (const ScoredOp* so = node.Poll()) {
    has_relax |= so->op.is_relax();
    has_refine |= so->op.is_refine();
  }
  EXPECT_TRUE(has_relax);   // RelaxCond: cl+ < cl*, not refined
  EXPECT_TRUE(has_refine);  // RefineCond: IM nonempty
}

TEST_F(EvalFixture, RefinedNodeNeverRelaxes) {
  const Schema& schema = demo_.graph().schema();
  PatternQuery q = ctx_->root()->query;
  Op addl;
  addl.kind = OpKind::kAddL;
  addl.u = 0;
  addl.lit = {schema.LookupAttr("ram"), CmpOp::kGe, Value::Num(4)};
  ASSERT_TRUE(Apply(addl, &q, opts_.max_bound));
  OpSequence ops;
  ops.Append(addl);
  auto eval = ctx_->Evaluate(q, ops);
  ASSERT_TRUE(eval->refined);

  ChaseNode node;
  node.eval = eval;
  GenerateOps(*ctx_, node, /*best_cl=*/-1e18, 0, nullptr);
  while (const ScoredOp* so = node.Poll()) {
    EXPECT_TRUE(so->op.is_refine()) << so->op.ToString(schema);
  }
}

TEST_F(EvalFixture, RefineCondBlockedWhenBoundCannotBeat) {
  // With pruning on and an incumbent at the node's cl+, refinement ops are
  // not generated.
  ChaseNode node;
  node.eval = ctx_->root();
  GenerateOps(*ctx_, node, /*best_cl=*/ctx_->root()->cl_plus, 0, nullptr);
  while (const ScoredOp* so = node.Poll()) {
    EXPECT_TRUE(so->op.is_relax());
  }
}

TEST_F(EvalFixture, BudgetFiltersExpensiveOps) {
  ChaseOptions tiny = opts_;
  tiny.budget = 0.5;  // below every unit cost
  ChaseContext ctx(demo_.graph(), demo_.Question(), tiny);
  ChaseNode node;
  node.eval = ctx.root();
  GenerateOps(ctx, node, -1e18, 0, nullptr);
  EXPECT_TRUE(node.exhausted());
}

TEST_F(EvalFixture, PerClassCapLimitsOpsPerKind) {
  ChaseNode node;
  node.eval = ctx_->root();
  GenerateOps(*ctx_, node, -1e18, /*per_class_cap=*/1, nullptr);
  std::map<OpKind, int> counts;
  while (const ScoredOp* so = node.Poll()) ++counts[so->op.kind];
  for (const auto& [kind, count] : counts) {
    EXPECT_LE(count, 1) << OpKindName(kind);
  }
}

TEST_F(EvalFixture, QueueSortedByPickiness) {
  ChaseNode node;
  node.eval = ctx_->root();
  GenerateOps(*ctx_, node, -1e18, 0, nullptr);
  for (size_t i = 1; i < node.queue.size(); ++i) {
    EXPECT_GE(node.queue[i - 1].pickiness + 1e-12, node.queue[i].pickiness);
  }
}

}  // namespace
}  // namespace wqe
