#include "graph/graph.h"

#include <gtest/gtest.h>

namespace wqe {
namespace {

Graph SmallGraph() {
  Graph g;
  NodeId a = g.AddNode("A", "a");
  NodeId b = g.AddNode("B", "b");
  NodeId c = g.AddNode("A", "c");
  g.SetNum(a, "x", 1);
  g.SetNum(b, "x", 2);
  g.SetStr(c, "color", "red");
  g.AddEdge(a, b);
  g.AddEdge(b, c);
  g.AddEdge(a, c);
  g.Finalize();
  return g;
}

TEST(GraphTest, CountsNodesAndEdges) {
  Graph g = SmallGraph();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(GraphTest, CsrAdjacency) {
  Graph g = SmallGraph();
  auto out0 = g.out(0);
  ASSERT_EQ(out0.size(), 2u);
  EXPECT_EQ(g.out(1).size(), 1u);
  EXPECT_EQ(g.out(2).size(), 0u);
  EXPECT_EQ(g.in(2).size(), 2u);
  EXPECT_EQ(g.in(0).size(), 0u);
}

TEST(GraphTest, DegreeSumsBothDirections) {
  Graph g = SmallGraph();
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.in_degree(0), 0u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(2), 2u);
}

TEST(GraphTest, LabelIndex) {
  Graph g = SmallGraph();
  const LabelId a_label = g.schema().LookupLabel("A");
  const auto& nodes = g.NodesWithLabel(a_label);
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_EQ(nodes[0], 0u);
  EXPECT_EQ(nodes[1], 2u);
}

TEST(GraphTest, UnknownLabelBucketIsEmpty) {
  Graph g = SmallGraph();
  EXPECT_TRUE(g.NodesWithLabel(9999).empty());
}

TEST(GraphTest, AttrLookup) {
  Graph g = SmallGraph();
  const AttrId x = g.schema().LookupAttr("x");
  ASSERT_NE(g.attr(0, x), nullptr);
  EXPECT_DOUBLE_EQ(g.attr(0, x)->num(), 1);
  EXPECT_EQ(g.attr(2, x), nullptr);  // node c has no "x"
}

TEST(GraphTest, SetAttrOverwrites) {
  Graph g;
  NodeId a = g.AddNode("A");
  g.SetNum(a, "x", 1);
  g.SetNum(a, "x", 9);
  g.Finalize();
  const AttrId x = g.schema().LookupAttr("x");
  EXPECT_DOUBLE_EQ(g.attr(a, x)->num(), 9);
  EXPECT_EQ(g.attrs(a).size(), 1u);
}

TEST(GraphTest, AttrsAreSortedAfterFinalize) {
  Graph g;
  NodeId a = g.AddNode("A");
  g.SetNum(a, "zzz", 1);
  g.SetNum(a, "aaa", 2);
  g.SetNum(a, "mmm", 3);
  g.Finalize();
  auto attrs = g.attrs(a);
  ASSERT_EQ(attrs.size(), 3u);
  EXPECT_LT(attrs[0].attr, attrs[1].attr);
  EXPECT_LT(attrs[1].attr, attrs[2].attr);
}

TEST(GraphTest, NamesPreserved) {
  Graph g = SmallGraph();
  EXPECT_EQ(g.name(0), "a");
  EXPECT_EQ(g.name(1), "b");
}

TEST(GraphTest, FinalizeIsIdempotent) {
  Graph g = SmallGraph();
  g.Finalize();
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.out(0).size(), 2u);
}

}  // namespace
}  // namespace wqe
