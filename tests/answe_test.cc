#include "chase/answe.h"

#include <gtest/gtest.h>

#include "gen/product_demo.h"

namespace wqe {
namespace {

// A Why-Empty setup: tighten the demo query until nothing matches.
WhyQuestion EmptyQuestion(const ProductDemo& demo) {
  WhyQuestion w = demo.Question();
  const Schema& schema = demo.graph().schema();
  // price >= 2000 kills every candidate.
  w.query.node(w.query.focus()).literals[0].constant = Value::Num(2000);
  // Desired answers: designate P3 and P5 as entities.
  std::vector<NodeId> desired = {demo.p(3), demo.p(5)};
  w.exemplar = Exemplar::FromEntities(demo.graph(), desired);
  (void)schema;
  return w;
}

TEST(AnsWETest, RepairsEmptyAnswer) {
  ProductDemo demo;
  ChaseOptions opts;
  opts.budget = 3;
  WhyQuestion w = EmptyQuestion(demo);

  ChaseContext probe(demo.graph(), w, opts);
  ASSERT_TRUE(probe.root()->matches.empty());

  ChaseResult r = AnsWE(demo.graph(), w, opts);
  ASSERT_TRUE(r.found());
  EXPECT_FALSE(r.best().matches.empty());
  // At least one relevant entity recovered.
  bool has_relevant = false;
  for (NodeId v : r.best().matches) {
    if (v == demo.p(3) || v == demo.p(5)) has_relevant = true;
  }
  EXPECT_TRUE(has_relevant);
}

TEST(AnsWETest, UsesOnlyRemovalOperators) {
  ProductDemo demo;
  ChaseOptions opts;
  opts.budget = 3;
  ChaseResult r = AnsWE(demo.graph(), EmptyQuestion(demo), opts);
  ASSERT_TRUE(r.found());
  EXPECT_FALSE(r.best().ops.empty());
  for (const Op& op : r.best().ops.ops()) {
    EXPECT_TRUE(op.kind == OpKind::kRmL || op.kind == OpKind::kRmE)
        << op.ToString(demo.graph().schema());
  }
}

TEST(AnsWETest, CostWithinBudget) {
  ProductDemo demo;
  ChaseOptions opts;
  opts.budget = 3;
  ChaseResult r = AnsWE(demo.graph(), EmptyQuestion(demo), opts);
  EXPECT_LE(r.best().cost, 3.0 + 1e-9);
}

TEST(AnsWETest, InsufficientBudgetReturnsOriginal) {
  ProductDemo demo;
  ChaseOptions opts;
  opts.budget = 0.5;  // no removal affordable
  ChaseResult r = AnsWE(demo.graph(), EmptyQuestion(demo), opts);
  ASSERT_TRUE(r.found());
  EXPECT_TRUE(r.best().ops.empty());
  EXPECT_TRUE(r.best().matches.empty());
}

TEST(AnsWETest, MultipleBlockingConditions) {
  // Kill matches with both a focus literal and an unreachable pattern node:
  // the repair must remove both atomic conditions.
  ProductDemo demo;
  const Graph& g = demo.graph();
  ChaseOptions opts;
  opts.budget = 4;

  WhyQuestion w = EmptyQuestion(demo);
  // P3 has no sensor: for P3 to match, the sensor edge must also go.
  std::vector<NodeId> desired = {demo.p(3)};
  w.exemplar = Exemplar::FromEntities(g, desired);

  ChaseResult r = AnsWE(g, w, opts);
  ASSERT_TRUE(r.found());
  ASSERT_FALSE(r.best().matches.empty());
  EXPECT_TRUE(std::binary_search(r.best().matches.begin(),
                                 r.best().matches.end(), demo.p(3)));
  EXPECT_GE(r.best().ops.size(), 2u);  // RmL(price) + RmE(sensor)
}

TEST(AnsWETest, FastOnDemo) {
  ProductDemo demo;
  ChaseOptions opts;
  opts.budget = 3;
  ChaseResult r = AnsWE(demo.graph(), EmptyQuestion(demo), opts);
  // The PTIME algorithm takes a handful of evaluations, not a search.
  EXPECT_LE(r.stats.steps, 20u);
}

}  // namespace
}  // namespace wqe
