#include "workload/templates.h"

#include <gtest/gtest.h>

#include "gen/datasets.h"
#include "gen/synthetic.h"
#include "match/matcher.h"

namespace wqe {
namespace {

TEST(TemplatesTest, DbpsbMixHasFortyTemplates) {
  auto templates = DbpsbTemplates();
  EXPECT_EQ(templates.size(), 40u);
  // Star-dominance mirrors the cited query-log statistics.
  size_t stars = 0;
  for (const QueryTemplate& t : templates) {
    if (t.shape == QueryShape::kStar) ++stars;
  }
  EXPECT_GE(stars * 100, templates.size() * 80);  // >= 80% stars
}

TEST(TemplatesTest, WatDivMixHasTwentyTemplates) {
  EXPECT_EQ(WatDivTemplates().size(), 20u);
}

TEST(TemplatesTest, InstantiationHasNonEmptyAnswer) {
  Graph g = GenerateGraph(ImdbLike(0.05));
  DistanceIndex dist(g);
  Matcher matcher(g, &dist);
  size_t done = 0;
  for (uint64_t seed = 1; seed <= 10 && done < 3; ++seed) {
    QueryTemplate tpl{QueryShape::kStar, 2, 2, 2};
    auto q = InstantiateTemplate(g, matcher, tpl, seed);
    if (!q.has_value()) continue;
    ++done;
    EXPECT_FALSE(matcher.Answer(*q).empty());
    EXPECT_EQ(q->Shape(), QueryShape::kStar);
    EXPECT_EQ(q->num_edges(), 2u);
  }
  EXPECT_GT(done, 0u);
}

TEST(TemplatesTest, WorkloadRoundRobinsTemplates) {
  Graph g = GenerateGraph(ImdbLike(0.05));
  auto queries = InstantiateWorkload(g, DbpsbTemplates(), 12, 9);
  ASSERT_GE(queries.size(), 8u);
  // Sizes should vary across the mix.
  std::set<size_t> sizes;
  for (const PatternQuery& q : queries) sizes.insert(q.num_edges());
  EXPECT_GE(sizes.size(), 2u);
}

TEST(TemplatesTest, EmptyTemplateListYieldsNothing) {
  Graph g = GenerateGraph(ImdbLike(0.02));
  EXPECT_TRUE(InstantiateWorkload(g, {}, 5, 1).empty());
}

}  // namespace
}  // namespace wqe
