#include "query/query.h"

#include <gtest/gtest.h>

namespace wqe {
namespace {

PatternQuery StarQuery4() {
  PatternQuery q;
  QNodeId hub = q.AddNode(1);
  QNodeId a = q.AddNode(2);
  QNodeId b = q.AddNode(3);
  QNodeId c = q.AddNode(4);
  q.SetFocus(hub);
  q.AddEdge(hub, a, 1);
  q.AddEdge(hub, b, 2);
  q.AddEdge(c, hub, 1);
  return q;
}

TEST(QueryTest, AddEdgeRejectsDuplicatesAndSelfLoops) {
  PatternQuery q;
  QNodeId a = q.AddNode(1);
  QNodeId b = q.AddNode(2);
  EXPECT_TRUE(q.AddEdge(a, b, 1));
  EXPECT_FALSE(q.AddEdge(a, b, 2));  // duplicate ordered pair
  EXPECT_TRUE(q.AddEdge(b, a, 1));   // reverse direction is distinct
  EXPECT_FALSE(q.AddEdge(a, a, 1));  // self loop
}

TEST(QueryTest, FindEdgeAndLiteral) {
  PatternQuery q = StarQuery4();
  EXPECT_GE(q.FindEdge(0, 1), 0);
  EXPECT_EQ(q.FindEdge(1, 0), -1);
  Literal lit{7, CmpOp::kGe, Value::Num(1)};
  q.AddLiteral(0, lit);
  EXPECT_EQ(q.FindLiteral(0, lit), 0);
  EXPECT_EQ(q.FindLiteral(0, 7, CmpOp::kGe), 0);
  EXPECT_EQ(q.FindLiteral(0, 7, CmpOp::kLe), -1);
}

TEST(QueryTest, ActiveNodesFollowFocusComponent) {
  PatternQuery q = StarQuery4();
  EXPECT_EQ(q.ActiveNodes().size(), 4u);
  // Orphan a node by removing its only edge.
  q.RemoveEdgeAt(static_cast<size_t>(q.FindEdge(0, 1)));
  auto active = q.ActiveNodes();
  EXPECT_EQ(active.size(), 3u);
  EXPECT_EQ(q.ActiveEdges().size(), 2u);
  // Node 1 still exists (stable ids) but is inactive.
  EXPECT_EQ(q.num_nodes(), 4u);
}

TEST(QueryTest, SizeCountsNodesLiteralsEdges) {
  PatternQuery q = StarQuery4();
  q.AddLiteral(0, {7, CmpOp::kGe, Value::Num(1)});
  // 4 nodes + 1 literal + 3 edges.
  EXPECT_EQ(q.Size(), 8u);
}

TEST(QueryTest, QueryDistanceSumsBounds) {
  PatternQuery q = StarQuery4();
  EXPECT_EQ(q.QueryDistance(1, 2), 3u);  // 1 -> hub (1) -> b (2)
  EXPECT_EQ(q.QueryDistance(0, 0), 0u);
  PatternQuery disconnected;
  disconnected.AddNode(1);
  disconnected.AddNode(2);
  EXPECT_EQ(disconnected.QueryDistance(0, 1), PatternQuery::kNoQueryDist);
}

TEST(QueryTest, ShapeClassification) {
  PatternQuery star = StarQuery4();
  EXPECT_EQ(star.Shape(), QueryShape::kStar);

  // A 3-node path is a star (its middle node covers both edges); a 4-node
  // path is the smallest proper chain.
  PatternQuery path3;
  path3.AddNode(1);
  path3.AddNode(2);
  path3.AddNode(3);
  path3.SetFocus(0);
  path3.AddEdge(0, 1, 1);
  path3.AddEdge(1, 2, 1);
  EXPECT_EQ(path3.Shape(), QueryShape::kStar);

  PatternQuery chain;
  for (int i = 0; i < 4; ++i) chain.AddNode(static_cast<LabelId>(i + 1));
  chain.SetFocus(0);
  chain.AddEdge(0, 1, 1);
  chain.AddEdge(1, 2, 1);
  chain.AddEdge(2, 3, 1);
  EXPECT_EQ(chain.Shape(), QueryShape::kChain);

  PatternQuery tree = StarQuery4();
  QNodeId extra = tree.AddNode(5);
  QNodeId extra2 = tree.AddNode(6);
  tree.AddEdge(1, extra, 1);
  tree.AddEdge(1, extra2, 1);
  EXPECT_EQ(tree.Shape(), QueryShape::kTree);

  PatternQuery cyclic = StarQuery4();
  cyclic.AddEdge(1, 2, 1);
  EXPECT_EQ(cyclic.Shape(), QueryShape::kCyclic);
}

TEST(QueryTest, FingerprintIgnoresLiteralOrderAndInactiveParts) {
  PatternQuery a = StarQuery4();
  a.AddLiteral(0, {7, CmpOp::kGe, Value::Num(1)});
  a.AddLiteral(0, {8, CmpOp::kLe, Value::Num(2)});
  PatternQuery b = StarQuery4();
  b.AddLiteral(0, {8, CmpOp::kLe, Value::Num(2)});
  b.AddLiteral(0, {7, CmpOp::kGe, Value::Num(1)});
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());

  // Literals on an inactive node do not affect the fingerprint.
  PatternQuery c = StarQuery4();
  c.RemoveEdgeAt(static_cast<size_t>(c.FindEdge(0, 1)));
  PatternQuery d = StarQuery4();
  d.RemoveEdgeAt(static_cast<size_t>(d.FindEdge(0, 1)));
  d.AddLiteral(1, {9, CmpOp::kEq, Value::Num(3)});
  EXPECT_EQ(c.Fingerprint(), d.Fingerprint());
}

TEST(QueryTest, FingerprintDistinguishesBoundsAndFocus) {
  PatternQuery a = StarQuery4();
  PatternQuery b = StarQuery4();
  b.edge(0).bound = 3;
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
  PatternQuery c = StarQuery4();
  c.SetFocus(1);
  EXPECT_NE(a.Fingerprint(), c.Fingerprint());
}

TEST(QueryTest, ToStringMentionsFocusAndEdges) {
  Schema schema;
  PatternQuery q;
  QNodeId a = q.AddNode(schema.InternLabel("Cellphone"));
  QNodeId b = q.AddNode(schema.InternLabel("Carrier"));
  q.SetFocus(a);
  q.AddEdge(a, b, 2);
  const std::string s = q.ToString(schema);
  EXPECT_NE(s.find("Cellphone"), std::string::npos);
  EXPECT_NE(s.find("bound 2"), std::string::npos);
  EXPECT_NE(s.find("focus=u0"), std::string::npos);
}

}  // namespace
}  // namespace wqe
