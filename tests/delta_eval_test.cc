// Equivalence suite for the incremental evaluation path (chase/delta_eval):
// the delta-aware evaluator must produce *byte-identical* solver output to
// full evaluation — same answers, same matches, same closeness, same chase
// tree (steps/pruned) — across every algorithm bundle and thread count; only
// the work counters (evaluations, tables built) may shrink. The match-set
// reconstruction itself is checked directly against the brute-force
// reference oracle on random graphs, op by op, including the
// not-provably-local payloads that must fall back to full evaluation.

#include <gtest/gtest.h>

#include <sstream>

#include "chase/delta_eval.h"
#include "chase/engine.h"
#include "chase/multi_focus.h"
#include "chase/next_op.h"
#include "chase/solve.h"
#include "chase/why_not.h"
#include "common/rng.h"
#include "gen/datasets.h"
#include "gen/product_demo.h"
#include "gen/synthetic.h"
#include "reference_matcher.h"
#include "workload/why_factory.h"

namespace wqe {
namespace {

ChaseOptions BaseOptions(size_t num_threads, bool use_delta) {
  ChaseOptions o;
  o.budget = 3;
  o.max_steps = 2000;
  o.top_k = 2;
  o.num_threads = num_threads;
  o.use_delta_eval = use_delta;
  return o;
}

/// Everything a ChaseResult reports that must be invariant under the delta
/// path: termination, the explored tree (steps, pruned — the bound cut counts
/// a skipped child as pruned exactly like its post-evaluation verdict would),
/// and every answer byte. `evaluations` is deliberately excluded: shrinking
/// it is the whole point.
std::string InvariantFingerprint(const ChaseResult& r) {
  std::ostringstream out;
  out << static_cast<int>(r.termination()) << '|' << r.stats.steps << '|'
      << r.stats.ops_generated << '|' << r.stats.pruned << '|' << r.cl_star
      << '\n';
  for (const WhyAnswer& a : r.answers) {
    out << a.fingerprint << '|' << a.cost << '|' << a.closeness << '|'
        << a.satisfies_exemplar << '|';
    for (NodeId v : a.matches) out << v << ',';
    out << '\n';
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// End-to-end: all seven solver bundles, delta on vs off, 1 and 4 threads.
// ---------------------------------------------------------------------------

TEST(DeltaEvalTest, EveryAlgorithmIdenticalWithDeltaOnAndOff) {
  Graph g = GenerateGraph(ImdbLike(0.04));
  WhyFactoryOptions fopts;
  fopts.query.num_edges = 2;
  fopts.disturb.num_ops = 2;
  fopts.seed = 11;
  auto cases = MakeBenchCases(g, 2, fopts);
  ASSERT_FALSE(cases.empty());

  for (const Algorithm algo :
       {Algorithm::kAnsW, Algorithm::kAnsWE, Algorithm::kAnsHeu,
        Algorithm::kFMAnsW, Algorithm::kApxWhyM}) {
    for (const size_t threads : {size_t{1}, size_t{4}}) {
      for (const BenchCase& c : cases) {
        ChaseResult off = Solve(g, c.question, BaseOptions(threads, false), algo);
        ChaseResult on = Solve(g, c.question, BaseOptions(threads, true), algo);
        ASSERT_TRUE(off.ok() && on.ok()) << AlgorithmName(algo);
        EXPECT_EQ(InvariantFingerprint(off), InvariantFingerprint(on))
            << AlgorithmName(algo) << " threads=" << threads;
        // The delta path may only ever do less work, never more.
        EXPECT_LE(on.stats.evaluations, off.stats.evaluations)
            << AlgorithmName(algo);
        EXPECT_EQ(off.stats.bound_cuts, 0u) << AlgorithmName(algo);
      }
    }
  }
}

TEST(DeltaEvalTest, DeltaOnIsByteIdenticalAcrossThreadCounts) {
  Graph g = GenerateGraph(DbpediaLike(0.04));
  WhyFactoryOptions fopts;
  fopts.query.num_edges = 2;
  fopts.disturb.num_ops = 2;
  fopts.seed = 5;
  auto cases = MakeBenchCases(g, 2, fopts);
  ASSERT_FALSE(cases.empty());

  for (const Algorithm algo : {Algorithm::kAnsW, Algorithm::kAnsHeu}) {
    for (const BenchCase& c : cases) {
      ChaseResult serial = Solve(g, c.question, BaseOptions(1, true), algo);
      ChaseResult parallel = Solve(g, c.question, BaseOptions(4, true), algo);
      ASSERT_TRUE(serial.ok() && parallel.ok());
      EXPECT_EQ(InvariantFingerprint(serial), InvariantFingerprint(parallel))
          << AlgorithmName(algo);
      EXPECT_EQ(serial.stats.evaluations, parallel.stats.evaluations)
          << AlgorithmName(algo);
    }
  }
}

TEST(DeltaEvalTest, MultiFocusIdenticalWithDeltaOnAndOff) {
  ProductDemo demo;
  MultiFocusQuestion w;
  w.query = demo.Query();
  w.foci = {0, 2};
  w.exemplars.push_back(demo.MakeExemplar());
  std::vector<NodeId> sprint = {demo.sprint()};
  w.exemplars.push_back(Exemplar::FromEntities(demo.graph(), sprint));

  auto run = [&](bool use_delta) {
    ChaseOptions o;
    o.budget = 4;
    o.use_delta_eval = use_delta;
    return AnsWMultiFocus(demo.graph(), w, o);
  };
  const MultiFocusResult off = run(false);
  const MultiFocusResult on = run(true);
  ASSERT_EQ(off.answers.size(), on.answers.size());
  for (size_t i = 0; i < off.answers.size(); ++i) {
    EXPECT_EQ(off.answers[i].fingerprint, on.answers[i].fingerprint);
    EXPECT_EQ(off.answers[i].total_closeness, on.answers[i].total_closeness);
    EXPECT_EQ(off.answers[i].matches_per_focus, on.answers[i].matches_per_focus);
  }
  EXPECT_EQ(off.stats.steps, on.stats.steps);
  EXPECT_EQ(off.stats.pruned, on.stats.pruned);
  EXPECT_LE(on.stats.evaluations, off.stats.evaluations);
}

TEST(DeltaEvalTest, WhyNotIdenticalWithDeltaOnAndOff) {
  ProductDemo demo;
  auto explain = [&](bool use_delta) {
    ChaseOptions o;
    o.budget = 4;
    o.use_delta_eval = use_delta;
    ChaseContext ctx(demo.graph(), demo.Question(), o);
    return ExplainWhyNot(ctx, demo.p(3)).ToString(demo.graph());
  };
  EXPECT_EQ(explain(false), explain(true));
}

// ---------------------------------------------------------------------------
// Direct oracle checks: DeltaEvaluator vs brute-force reference, per op.
// ---------------------------------------------------------------------------

Graph RandomAttributedGraph(Rng& rng, size_t n, size_t m, int num_labels) {
  Graph g;
  for (size_t i = 0; i < n; ++i) {
    NodeId v = g.AddNode(
        "L" + std::to_string(rng.Index(static_cast<size_t>(num_labels))));
    g.SetNum(v, "x", static_cast<double>(rng.Int(0, 9)));
    if (rng.Chance(0.6)) {
      g.SetNum(v, "y", static_cast<double>(rng.Int(0, 4)));
    }
  }
  for (size_t e = 0; e < m; ++e) {
    NodeId a = static_cast<NodeId>(rng.Index(n));
    NodeId b = static_cast<NodeId>(rng.Index(n));
    if (a != b) g.AddEdge(a, b);
  }
  g.Finalize();
  return g;
}

PatternQuery RandomQuery(Rng& rng, Graph& g, size_t max_nodes) {
  PatternQuery q;
  const size_t num_nodes = 2 + rng.Index(max_nodes - 1);
  for (size_t i = 0; i < num_nodes; ++i) {
    LabelId label = g.schema().LookupLabel("L" + std::to_string(rng.Index(3)));
    q.AddNode(label);
    if (rng.Chance(0.5)) {
      q.AddLiteral(static_cast<QNodeId>(i),
                   {g.schema().LookupAttr("x"), CmpOp::kGe,
                    Value::Num(static_cast<double>(rng.Int(0, 5)))});
    }
  }
  for (size_t i = 1; i < num_nodes; ++i) {
    const QNodeId parent = static_cast<QNodeId>(rng.Index(i));
    q.AddEdge(parent, static_cast<QNodeId>(i),
              static_cast<uint32_t>(rng.Int(1, 3)));
  }
  q.SetFocus(0);
  return q;
}

/// A context whose exemplar is drawn from the focus's candidate class so the
/// rep is usually nontrivial and operator generation has something to chew.
std::unique_ptr<ChaseContext> MakeContext(Graph& g, const PatternQuery& q,
                                          bool use_memo = true) {
  std::vector<NodeId> entities = ComputeCandidates(g, q, q.focus());
  if (entities.empty()) {
    entities = {0, 1};
  } else if (entities.size() > 3) {
    entities.resize(3);
  }
  WhyQuestion w;
  w.query = q;
  w.exemplar = Exemplar::FromEntities(g, entities);
  ChaseOptions o;
  o.budget = 3;
  o.use_memo = use_memo;
  return std::make_unique<ChaseContext>(g, w, o);
}

uint64_t Counter(ChaseContext& ctx, const char* name) {
  return ctx.obs().metrics.counter(name).Value();
}

TEST(DeltaEvalTest, SingleOpDeltasMatchBruteForceOracle) {
  uint64_t delta_hits_total = 0;
  for (const uint64_t seed : {3u, 17u, 91u, 404u}) {
    Rng rng(seed);
    Graph g = RandomAttributedGraph(rng, 14, 30, 3);
    ReferenceMatcher reference(g);
    PatternQuery q = RandomQuery(rng, g, 4);
    auto ctx = MakeContext(g, q);
    DeltaEvaluator delta(*ctx);

    ChaseNode root_node;
    root_node.eval = ctx->root();
    GenerateOps(*ctx, root_node, /*best_cl=*/-1e18, /*per_class_cap=*/0,
                nullptr);
    size_t tried = 0;
    for (const ScoredOp& scored : root_node.queue) {
      if (tried >= 12) break;
      PatternQuery child = q;
      if (!Apply(scored.op, &child, ctx->options().max_bound)) continue;
      ++tried;
      OpSequence ops;
      ops.Append(scored.op);
      auto eval = delta.Evaluate(child, ops, ctx->root().get(), {scored.op});
      EXPECT_EQ(eval->matches, reference.Answer(child))
          << "seed=" << seed << " op=" << scored.op.ToString(g.schema());
      // The delta result must also agree byte-for-byte with the full path.
      ChaseOptions full_opts = ctx->options();
      full_opts.use_delta_eval = false;
      ChaseContext full_ctx(g, {q, ctx->question().exemplar}, full_opts);
      auto full = full_ctx.Evaluate(child, ops);
      EXPECT_EQ(eval->matches, full->matches);
      EXPECT_EQ(eval->cl, full->cl);
      EXPECT_EQ(eval->cl_plus, full->cl_plus);
      EXPECT_EQ(eval->satisfies_exemplar, full->satisfies_exemplar);
    }
    delta_hits_total += Counter(*ctx, "delta_eval.hits");
  }
  // Every generated op is a pure-polarity single-op payload, so all of the
  // checks above must have exercised the incremental paths.
  EXPECT_GT(delta_hits_total, 0u);
}

TEST(DeltaEvalTest, MultiOpRelaxPayloadMatchesOracle) {
  for (const uint64_t seed : {23u, 58u}) {
    Rng rng(seed);
    Graph g = RandomAttributedGraph(rng, 14, 32, 3);
    ReferenceMatcher reference(g);
    PatternQuery q = RandomQuery(rng, g, 4);
    auto ctx = MakeContext(g, q, /*use_memo=*/false);
    DeltaEvaluator delta(*ctx);

    ChaseNode root_node;
    root_node.eval = ctx->root();
    GenerateOps(*ctx, root_node, -1e18, 0, nullptr);
    std::vector<Op> relaxes;
    for (const ScoredOp& scored : root_node.queue) {
      if (scored.op.is_relax()) relaxes.push_back(scored.op);
      if (relaxes.size() == 2) break;
    }
    if (relaxes.size() < 2) continue;  // seed produced no joint payload
    PatternQuery child = q;
    if (!Apply(relaxes[0], &child, ctx->options().max_bound)) continue;
    if (!Apply(relaxes[1], &child, ctx->options().max_bound)) continue;
    OpSequence ops;
    ops.Append(relaxes[0]);
    ops.Append(relaxes[1]);
    const uint64_t hits_before = Counter(*ctx, "delta_eval.hits");
    auto eval = delta.Evaluate(child, ops, ctx->root().get(), relaxes);
    EXPECT_EQ(eval->matches, reference.Answer(child)) << "seed=" << seed;
    // A same-polarity payload is provably local: no fallback.
    EXPECT_EQ(Counter(*ctx, "delta_eval.hits"), hits_before + 1);
  }
}

TEST(DeltaEvalTest, NotProvablyLocalPayloadsFallBackToFullEvaluation) {
  Rng rng(7);
  Graph g = RandomAttributedGraph(rng, 14, 30, 3);
  ReferenceMatcher reference(g);
  PatternQuery q = RandomQuery(rng, g, 4);
  auto ctx = MakeContext(g, q, /*use_memo=*/false);
  DeltaEvaluator delta(*ctx);
  const AttrId x = g.schema().LookupAttr("x");

  // A refinement on the focus node itself shifts the focus candidate space
  // but not the polarity argument: it stays on the (refine) delta path and
  // must remain exact.
  Op focus_op;
  focus_op.kind = OpKind::kAddL;
  focus_op.u = q.focus();
  focus_op.lit = {x, CmpOp::kLe, Value::Num(8)};
  PatternQuery focus_child = q;
  ASSERT_TRUE(Apply(focus_op, &focus_child, ctx->options().max_bound));
  uint64_t fb = Counter(*ctx, "delta_eval.full_fallbacks");
  const uint64_t hits = Counter(*ctx, "delta_eval.hits");
  OpSequence focus_ops;
  focus_ops.Append(focus_op);
  auto focus_eval =
      delta.Evaluate(focus_child, focus_ops, ctx->root().get(), {focus_op});
  EXPECT_EQ(Counter(*ctx, "delta_eval.full_fallbacks"), fb);
  EXPECT_EQ(Counter(*ctx, "delta_eval.hits"), hits + 1);
  EXPECT_EQ(focus_eval->matches, reference.Answer(focus_child));

  // A mixed relax+refine payload on a non-focus node: neither inclusion
  // holds — must fall back.
  const QNodeId other = static_cast<QNodeId>(q.focus() == 0 ? 1 : 0);
  Op add;
  add.kind = OpKind::kAddL;
  add.u = other;
  add.lit = {x, CmpOp::kLe, Value::Num(9)};
  Op rm;
  rm.kind = OpKind::kRmL;
  rm.u = other;
  rm.lit = add.lit;
  PatternQuery mixed_child = q;
  ASSERT_TRUE(Apply(add, &mixed_child, ctx->options().max_bound));
  ASSERT_TRUE(Apply(rm, &mixed_child, ctx->options().max_bound));
  fb = Counter(*ctx, "delta_eval.full_fallbacks");
  OpSequence mixed_ops;
  mixed_ops.Append(add);
  mixed_ops.Append(rm);
  auto mixed_eval = delta.Evaluate(mixed_child, mixed_ops, ctx->root().get(),
                                   {add, rm});
  EXPECT_EQ(Counter(*ctx, "delta_eval.full_fallbacks"), fb + 1);
  EXPECT_EQ(mixed_eval->matches, reference.Answer(mixed_child));

  // No parent context at all: the delta has nothing to diff against.
  fb = Counter(*ctx, "delta_eval.full_fallbacks");
  OpSequence add_ops;
  add_ops.Append(add);
  PatternQuery add_child = q;
  ASSERT_TRUE(Apply(add, &add_child, ctx->options().max_bound));
  auto orphan = delta.Evaluate(add_child, add_ops, nullptr, {add});
  EXPECT_EQ(Counter(*ctx, "delta_eval.full_fallbacks"), fb + 1);
  EXPECT_EQ(orphan->matches, reference.Answer(add_child));

  // An empty payload cannot be classified: fallback.
  fb = Counter(*ctx, "delta_eval.full_fallbacks");
  auto empty = delta.Evaluate(q, OpSequence(), ctx->root().get(), {});
  EXPECT_EQ(Counter(*ctx, "delta_eval.full_fallbacks"), fb + 1);
  EXPECT_EQ(empty->matches, ctx->root()->matches);
}

TEST(DeltaEvalTest, EngineBoundCutSkipsRefineOnlyChildrenPreEvaluation) {
  // No graph needed: the engine's bound cut is pure control flow over the
  // proposal's polarity and the parent's cl⁺.
  PatternQuery q;
  q.SetFocus(q.AddNode(1));
  q.AddLiteral(0, {0, CmpOp::kGe, Value::Num(1)});

  EvalResult parent;
  parent.query = q;
  parent.cl_plus = 0.1;  // under the stub threshold: refine children are dead

  Op refine;
  refine.kind = OpKind::kAddL;
  refine.u = 0;
  refine.lit = {0, CmpOp::kLe, Value::Num(5)};
  Op relax;
  relax.kind = OpKind::kRmL;
  relax.u = 0;
  relax.lit = {0, CmpOp::kGe, Value::Num(1)};

  struct CutAccept : engine::AcceptPolicy {
    bool PruneByBound(double bound, const engine::Proposal&,
                      engine::ChaseState&) override {
      return bound <= 0.5;
    }
    bool Offer(const engine::Judged&, const engine::Proposal&,
               engine::ChaseState&) override {
      return false;
    }
  } accept;

  size_t evaluated = 0;
  ChaseOptions opts;  // use_delta_eval defaults on
  engine::EngineConfig cfg;
  cfg.opts = &opts;
  cfg.accept = &accept;
  cfg.evaluate = [&](PatternQuery&& query, OpSequence ops,
                     const engine::Proposal&) {
    ++evaluated;
    engine::Judged j;
    j.eval = std::make_shared<EvalResult>();
    j.eval->query = std::move(query);
    j.eval->ops = std::move(ops);
    return j;
  };

  engine::ListFrontier frontier(
      &q, {{{refine}, 1.0, -1}, {{relax}, 1.0, -1}}, &parent);
  cfg.frontier = &frontier;
  uint64_t steps = 0;
  uint64_t pruned = 0;
  engine::ChaseState state(&steps, &pruned);
  engine::Run(cfg, state);

  // The refine-only proposal was cut before its evaluation ran; the relax
  // proposal (parent bound does not dominate) was evaluated.
  EXPECT_EQ(state.bound_cuts, 1u);
  EXPECT_EQ(pruned, 1u);
  EXPECT_EQ(evaluated, 1u);

  // With the delta path off, the cut must not fire at all.
  opts.use_delta_eval = false;
  engine::ListFrontier replay(&q, {{{refine}, 1.0, -1}}, &parent);
  cfg.frontier = &replay;
  engine::ChaseState state2(&steps, &pruned);
  engine::Run(cfg, state2);
  EXPECT_EQ(state2.bound_cuts, 0u);
  EXPECT_EQ(evaluated, 2u);
}

TEST(DeltaEvalTest, RefineDeltaReusesParentTablesWithoutMaterializing) {
  Rng rng(19);
  Graph g = RandomAttributedGraph(rng, 14, 30, 3);
  // A 4-node path with the focus at one end and the refinement at the other:
  // the star centered mid-path neither contains the refined node nor changes
  // its focus distance, so its signature — and its table — must carry over.
  PatternQuery q;
  const LabelId l0 = g.schema().LookupLabel("L0");
  for (int i = 0; i < 4; ++i) q.AddNode(l0);
  q.AddEdge(0, 1, 1);
  q.AddEdge(1, 2, 1);
  q.AddEdge(2, 3, 1);
  q.SetFocus(0);
  auto ctx = MakeContext(g, q, /*use_memo=*/false);
  DeltaEvaluator delta(*ctx);
  ASSERT_NE(ctx->root()->star_state, nullptr);
  const AttrId x = g.schema().LookupAttr("x");

  Op refine;
  refine.kind = OpKind::kAddL;
  refine.u = 3;
  refine.lit = {x, CmpOp::kLe, Value::Num(9)};
  PatternQuery child = q;
  ASSERT_TRUE(Apply(refine, &child, ctx->options().max_bound));
  OpSequence ops;
  ops.Append(refine);

  const uint64_t built_before = ctx->star_matcher().stats().tables_built;
  auto eval = delta.Evaluate(child, ops, ctx->root().get(), {refine});
  // Q'(G) ⊆ Q(G): verification is complete without tables, so the refine
  // path never pays a materialization.
  EXPECT_EQ(ctx->star_matcher().stats().tables_built, built_before);
  // Every child match survives from the parent set.
  for (NodeId v : eval->matches) {
    EXPECT_TRUE(std::binary_search(ctx->root()->matches.begin(),
                                   ctx->root()->matches.end(), v));
  }
  // The untouched stars' tables carried over from the parent state.
  EXPECT_GT(ctx->star_matcher().stats().reuse_hits, 0u);
}

}  // namespace
}  // namespace wqe
