#include "obs/resource_sampler.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "obs/json.h"

namespace wqe {
namespace {

TEST(ResourceSamplerTest, ReadsRssOnLinux) {
#if defined(__linux__)
  const int64_t rss = obs::ResourceSampler::CurrentRssBytes();
  const int64_t peak = obs::ResourceSampler::PeakRssBytes();
  ASSERT_GT(rss, 0);
  ASSERT_GT(peak, 0);
  EXPECT_LE(rss, peak + (64 << 20));  // peak is a high-water mark
#else
  EXPECT_EQ(obs::ResourceSampler::CurrentRssBytes(), -1);
#endif
}

TEST(ResourceSamplerTest, RecordsGaugesAndHistogramsIntoScope) {
  obs::Observability o;
  {
    obs::ResourceSampler::Options opts;
    opts.period_ms = 1;
    obs::ResourceSampler sampler(&o, opts);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    sampler.Stop();
    EXPECT_GE(sampler.samples(), 2u);  // immediate + final at minimum
#if defined(__linux__)
    EXPECT_GT(sampler.max_rss_bytes(), 0);
#endif
  }
#if defined(__linux__)
  EXPECT_GT(o.metrics.gauge("proc.rss_bytes").Value(), 0);
  EXPECT_GT(o.metrics.gauge("proc.peak_rss_bytes").Value(), 0);
  EXPECT_GT(o.metrics.histogram("sampler.rss_bytes").Snap().count, 0u);
#endif
  EXPECT_GT(o.metrics.histogram("sampler.queue_depth").Snap().count, 0u);
}

TEST(ResourceSamplerTest, StopIsIdempotentAndDestructorSafe) {
  obs::Observability o;
  obs::ResourceSampler sampler(&o);  // default 100 ms period
  sampler.Stop();
  sampler.Stop();
  // Destructor runs Stop() again — must not deadlock or double-join.
}

TEST(ResourceSamplerTest, MeasuredDutyCycleIsSmall) {
  obs::Observability o;
  obs::ResourceSampler::Options opts;
  opts.period_ms = 50;  // the bench gate's configuration
  const double pct = obs::ResourceSampler::MeasureOverheadPct(&o, opts, 64);
  EXPECT_GE(pct, 0.0);
  // The documented budget is < 2%; leave generous headroom for a loaded CI
  // box — a sample is two small /proc reads, not milliseconds of work.
  EXPECT_LT(pct, 2.0);
}

TEST(ResourceSamplerTest, MetricsExportStaysValidJson) {
  obs::Observability o;
  {
    obs::ResourceSampler::Options opts;
    opts.period_ms = 1;
    obs::ResourceSampler sampler(&o, opts);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const std::string doc = obs::ExportMetricsJson(o, 0.01);
  auto parsed = obs::ParseJson(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const obs::JsonValue* metrics = parsed.value().Find("metrics");
  ASSERT_NE(metrics, nullptr);
  const obs::JsonValue* hists = metrics->Find("histograms");
  ASSERT_NE(hists, nullptr);
  const obs::JsonValue* qd = hists->Find("sampler.queue_depth");
  ASSERT_NE(qd, nullptr);
  // The quantile export includes the new p90 between p50 and p99.
  EXPECT_NE(qd->Find("p50"), nullptr);
  EXPECT_NE(qd->Find("p90"), nullptr);
  EXPECT_NE(qd->Find("p99"), nullptr);
}

}  // namespace
}  // namespace wqe
