#include "graph/value.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace wqe {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_FALSE(v.is_num());
  EXPECT_FALSE(v.is_str());
}

TEST(ValueTest, NumHoldsPayload) {
  Value v = Value::Num(6.2);
  EXPECT_TRUE(v.is_num());
  EXPECT_DOUBLE_EQ(v.num(), 6.2);
}

TEST(ValueTest, StrHoldsSymbol) {
  Value v = Value::Str(42);
  EXPECT_TRUE(v.is_str());
  EXPECT_EQ(v.str(), 42u);
}

TEST(ValueTest, EqualityIsKindAndPayload) {
  EXPECT_EQ(Value::Num(5), Value::Num(5));
  EXPECT_NE(Value::Num(5), Value::Num(6));
  EXPECT_NE(Value::Num(5), Value::Str(5));
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_NE(Value::Null(), Value::Num(0));
}

TEST(ValueTest, OrderingNullsNumsStrings) {
  std::vector<Value> vals = {Value::Str(1), Value::Num(3), Value::Null(),
                             Value::Num(1)};
  std::sort(vals.begin(), vals.end());
  EXPECT_TRUE(vals[0].is_null());
  EXPECT_TRUE(vals[1].is_num());
  EXPECT_DOUBLE_EQ(vals[1].num(), 1);
  EXPECT_DOUBLE_EQ(vals[2].num(), 3);
  EXPECT_TRUE(vals[3].is_str());
}

TEST(ValueTest, ToStringIntegralNumbersHaveNoDecimalPoint) {
  Interner strings;
  EXPECT_EQ(Value::Num(840).ToString(strings), "840");
  EXPECT_EQ(Value::Num(6.2).ToString(strings), "6.2");
  EXPECT_EQ(Value::Null().ToString(strings), "null");
}

TEST(ValueTest, ToStringNumbersRoundTripExactly) {
  Interner strings;
  // Shortest form is kept when it already round-trips...
  EXPECT_EQ(Value::Num(6.2).ToString(strings), "6.2");
  // ...but awkward doubles must print enough digits that parsing the text
  // recovers the identical bits — the replay trace depends on it.
  for (double v : {1574.213859, 62.631173, 7.763549, 0.1 + 0.2, 1e-9 + 1e-17}) {
    const std::string s = Value::Num(v).ToString(strings);
    EXPECT_EQ(std::stod(s), v) << "lossy ToString: " << s;
  }
}

TEST(ValueTest, ToStringCategoricalUsesInterner) {
  Interner strings;
  const SymbolId id = strings.Intern("Samsung");
  EXPECT_EQ(Value::Str(id).ToString(strings), "Samsung");
}

}  // namespace
}  // namespace wqe
