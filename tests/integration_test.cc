// End-to-end pipeline tests on synthetic workloads: dataset generation ->
// ground-truth queries -> disturbance -> Why-questions -> all algorithms.

#include <gtest/gtest.h>

#include "chase/ans_heu.h"
#include "chase/answ.h"
#include "gen/datasets.h"
#include "gen/synthetic.h"
#include "workload/suite.h"

namespace wqe {
namespace {

class IntegrationFixture : public ::testing::Test {
 protected:
  IntegrationFixture() : g_(GenerateGraph(ImdbLike(0.04))) {
    WhyFactoryOptions opts;
    opts.query.num_edges = 2;
    opts.disturb.num_ops = 2;
    opts.seed = 77;
    cases_ = MakeBenchCases(g_, 4, opts);
  }

  ChaseOptions Base() const {
    ChaseOptions o;
    o.budget = 3;
    o.max_steps = 2000;
    return o;
  }

  Graph g_;
  std::vector<BenchCase> cases_;
};

TEST_F(IntegrationFixture, CasesGenerated) { ASSERT_GE(cases_.size(), 2u); }

TEST_F(IntegrationFixture, AnsWProducesValidAnswersOnSynthetic) {
  for (const BenchCase& c : cases_) {
    ChaseResult r = AnsW(g_, c.question, Base());
    ASSERT_TRUE(r.found());
    EXPECT_LE(r.best().cost, 3.0 + 1e-9);
    EXPECT_TRUE(r.best().ops.IsNormalForm());
    // The reported closeness is consistent with an independent evaluation.
    ChaseContext probe(g_, c.question, Base());
    auto eval = probe.Evaluate(r.best().rewrite, r.best().ops);
    EXPECT_NEAR(eval->cl, r.best().closeness, 1e-9);
    EXPECT_EQ(eval->matches, r.best().matches);
  }
}

TEST_F(IntegrationFixture, ExactDominatesHeuristicAndBaseline) {
  for (const BenchCase& c : cases_) {
    const double exact = AnsW(g_, c.question, Base()).best().closeness;
    ChaseOptions heu_opts = Base();
    heu_opts.beam = 2;
    const double heu = AnsHeu(g_, c.question, heu_opts).best().closeness;
    EXPECT_LE(heu, exact + 1e-9);
  }
}

TEST_F(IntegrationFixture, AblationsAgreeOnBestCloseness) {
  // Pruning and caching must not change the optimum (Lemma 5.5 soundness).
  for (const BenchCase& c : cases_) {
    ChaseOptions base = Base();
    ChaseOptions nc = base;
    nc.use_cache = false;
    ChaseOptions nb = base;
    nb.use_cache = false;
    nb.use_pruning = false;

    const double full = AnsW(g_, c.question, base).best().closeness;
    const double no_cache = AnsW(g_, c.question, nc).best().closeness;
    const double no_prune = AnsW(g_, c.question, nb).best().closeness;
    EXPECT_NEAR(full, no_cache, 1e-9);
    EXPECT_NEAR(full, no_prune, 1e-9);
  }
}

TEST_F(IntegrationFixture, RecoversGroundTruthAnswersReasonably) {
  // With small disturbances and matching budget, rewrites should overlap
  // the ground-truth answers substantially on average.
  Aggregate delta;
  for (const BenchCase& c : cases_) {
    ChaseResult r = AnsW(g_, c.question, Base());
    delta.Add(AnswerJaccard(r.best().matches, c.gt_answer));
  }
  EXPECT_GT(delta.Mean(), 0.3);
}

TEST_F(IntegrationFixture, SharedContextSessionsReuseCache) {
  // Exploratory-search style: consecutive questions over one context.
  const BenchCase& c = cases_.front();
  ChaseContext ctx(g_, c.question, Base());
  ChaseResult first = AnsWWithContext(ctx);
  ASSERT_TRUE(first.found());
  const uint64_t evals_first = ctx.stats().evaluations;
  ChaseResult second = AnsWWithContext(ctx);
  ASSERT_TRUE(second.found());
  // The memo answers every repeated rewrite: no new evaluations needed.
  EXPECT_EQ(ctx.stats().evaluations, evals_first);
  EXPECT_NEAR(first.best().closeness, second.best().closeness, 1e-9);
}

TEST_F(IntegrationFixture, WorksOnAllDatasetPresets) {
  for (const GraphSpec& spec : AllDatasets(0.01)) {
    Graph g = GenerateGraph(spec);
    WhyFactoryOptions opts;
    opts.query.num_edges = 1;
    opts.disturb.num_ops = 1;
    auto cases = MakeBenchCases(g, 1, opts);
    if (cases.empty()) continue;  // tiny presets may fail generation
    ChaseOptions base;
    base.budget = 2;
    base.max_steps = 500;
    base.beam = 2;
    ChaseResult r = AnsHeu(g, cases[0].question, base);
    EXPECT_TRUE(r.found()) << spec.name;
  }
}

}  // namespace
}  // namespace wqe
