// Property suite: the production Matcher and the star-view StarMatcher agree
// with a brute-force enumeration oracle on random small graphs and random
// queries — including wildcard labels, multi-bound edges, cycles, and
// literal predicates.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "match/star_matcher.h"
#include "reference_matcher.h"

namespace wqe {
namespace {

Graph RandomAttributedGraph(Rng& rng, size_t n, size_t m, int num_labels) {
  Graph g;
  for (size_t i = 0; i < n; ++i) {
    NodeId v = g.AddNode("L" + std::to_string(rng.Index(static_cast<size_t>(num_labels))));
    g.SetNum(v, "x", static_cast<double>(rng.Int(0, 9)));
    if (rng.Chance(0.6)) {
      g.SetNum(v, "y", static_cast<double>(rng.Int(0, 4)));
    }
    if (rng.Chance(0.4)) {
      g.SetStr(v, "c", rng.Chance(0.5) ? "red" : "blue");
    }
  }
  for (size_t e = 0; e < m; ++e) {
    NodeId a = static_cast<NodeId>(rng.Index(n));
    NodeId b = static_cast<NodeId>(rng.Index(n));
    if (a != b) g.AddEdge(a, b);
  }
  g.Finalize();
  return g;
}

PatternQuery RandomQuery(Rng& rng, Graph& g, size_t max_nodes) {
  PatternQuery q;
  const size_t num_nodes = 1 + rng.Index(max_nodes);
  for (size_t i = 0; i < num_nodes; ++i) {
    // Wildcard labels with probability 1/4.
    LabelId label = kWildcardSymbol;
    if (!rng.Chance(0.25)) {
      label = g.schema().LookupLabel("L" + std::to_string(rng.Index(3)));
    }
    q.AddNode(label);
    // Random literal on x.
    if (rng.Chance(0.5)) {
      const CmpOp op = static_cast<CmpOp>(rng.Int(0, 4));
      q.AddLiteral(static_cast<QNodeId>(i),
                   {g.schema().LookupAttr("x"), op,
                    Value::Num(static_cast<double>(rng.Int(0, 9)))});
    }
  }
  // Random connected-ish edges: spanning tree + extras.
  for (size_t i = 1; i < num_nodes; ++i) {
    const QNodeId parent = static_cast<QNodeId>(rng.Index(i));
    const uint32_t bound = static_cast<uint32_t>(rng.Int(1, 3));
    if (rng.Chance(0.5)) {
      q.AddEdge(parent, static_cast<QNodeId>(i), bound);
    } else {
      q.AddEdge(static_cast<QNodeId>(i), parent, bound);
    }
  }
  for (int extra = 0; extra < 1; ++extra) {
    if (num_nodes < 3 || !rng.Chance(0.4)) break;
    const QNodeId a = static_cast<QNodeId>(rng.Index(num_nodes));
    const QNodeId b = static_cast<QNodeId>(rng.Index(num_nodes));
    if (a != b && !q.HasEdgeEitherDirection(a, b)) {
      q.AddEdge(a, b, static_cast<uint32_t>(rng.Int(1, 2)));
    }
  }
  q.SetFocus(static_cast<QNodeId>(rng.Index(num_nodes)));
  return q;
}

class MatcherPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MatcherPropertyTest, MatcherAgreesWithBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 5);
  for (int trial = 0; trial < 15; ++trial) {
    Graph g = RandomAttributedGraph(rng, 14, 30, 3);
    ReferenceMatcher reference(g);
    DistanceIndex dist(g);
    Matcher matcher(g, &dist);
    for (int probe = 0; probe < 6; ++probe) {
      PatternQuery q = RandomQuery(rng, g, 4);
      EXPECT_EQ(matcher.Answer(q), reference.Answer(q))
          << "trial " << trial << " probe " << probe << "\n"
          << q.ToString(g.schema());
    }
  }
}

TEST_P(MatcherPropertyTest, StarMatcherAgreesWithBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 3);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = RandomAttributedGraph(rng, 14, 30, 3);
    ReferenceMatcher reference(g);
    DistanceIndex dist(g);
    ViewCache cache;
    StarMatcher sm(g, &dist, &cache);
    for (int probe = 0; probe < 6; ++probe) {
      PatternQuery q = RandomQuery(rng, g, 4);
      EXPECT_EQ(sm.Evaluate(q).matches, reference.Answer(q))
          << "trial " << trial << " probe " << probe << "\n"
          << q.ToString(g.schema());
    }
  }
}

TEST_P(MatcherPropertyTest, CachedStarMatcherStaysCorrectAcrossRewrites) {
  // Evaluate a query, mutate it (rewrites share star signatures across
  // different node orders), and check the cached evaluation stays exact.
  Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 1);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = RandomAttributedGraph(rng, 14, 30, 3);
    ReferenceMatcher reference(g);
    DistanceIndex dist(g);
    ViewCache cache;
    StarMatcher sm(g, &dist, &cache);
    PatternQuery q = RandomQuery(rng, g, 4);
    for (int step = 0; step < 5; ++step) {
      EXPECT_EQ(sm.Evaluate(q).matches, reference.Answer(q))
          << q.ToString(g.schema());
      // Random small mutation.
      if (!q.node(q.focus()).literals.empty() && rng.Chance(0.5)) {
        q.RemoveLiteralAt(q.focus(), 0);
      } else if (q.num_edges() > 0 && rng.Chance(0.3)) {
        q.edge(rng.Index(q.num_edges())).bound =
            static_cast<uint32_t>(rng.Int(1, 3));
      } else {
        q.AddLiteral(static_cast<QNodeId>(rng.Index(q.num_nodes())),
                     {g.schema().LookupAttr("x"), CmpOp::kGe,
                      Value::Num(static_cast<double>(rng.Int(0, 5)))});
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatcherPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace wqe
