#include "match/candidates.h"

#include <gtest/gtest.h>

#include "gen/product_demo.h"

namespace wqe {
namespace {

TEST(CandidatesTest, LabelAndLiteralFiltering) {
  ProductDemo demo;
  const Graph& g = demo.graph();
  PatternQuery q = demo.Query();

  // Focus: Cellphone with price >= 840 -> P1, P2, P5.
  auto focus_cands = ComputeCandidates(g, q, q.focus());
  EXPECT_EQ(focus_cands.size(), 3u);
  for (NodeId v : focus_cands) {
    EXPECT_TRUE(IsCandidate(g, q, q.focus(), v));
  }

  // Carrier node (no literals): both carriers.
  auto carrier_cands = ComputeCandidates(g, q, 2);
  EXPECT_EQ(carrier_cands.size(), 2u);
}

TEST(CandidatesTest, WildcardLabelMatchesEverything) {
  ProductDemo demo;
  PatternQuery q;
  QNodeId u = q.AddNode(kWildcardSymbol);
  q.SetFocus(u);
  auto cands = ComputeCandidates(demo.graph(), q, u);
  EXPECT_EQ(cands.size(), demo.graph().num_nodes());
}

TEST(CandidatesTest, WildcardLabelWithLiteral) {
  ProductDemo demo;
  const Graph& g = demo.graph();
  PatternQuery q;
  QNodeId u = q.AddNode(kWildcardSymbol);
  q.SetFocus(u);
  q.AddLiteral(u, {g.schema().LookupAttr("discount"), CmpOp::kGe, Value::Num(20)});
  auto cands = ComputeCandidates(g, q, u);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0], demo.sprint());
}

TEST(CandidatesTest, AllCandidatesSkipsInactiveNodes) {
  ProductDemo demo;
  PatternQuery q = demo.Query();
  // Disconnect the sensor node.
  q.RemoveEdgeAt(static_cast<size_t>(q.FindEdge(q.focus(), 3)));
  auto all = AllCandidates(demo.graph(), q);
  EXPECT_FALSE(all[0].empty());
  EXPECT_TRUE(all[3].empty());  // inactive
}

TEST(CandidatesTest, CandidatesAreSorted) {
  ProductDemo demo;
  PatternQuery q = demo.Query();
  auto cands = ComputeCandidates(demo.graph(), q, q.focus());
  EXPECT_TRUE(std::is_sorted(cands.begin(), cands.end()));
}

}  // namespace
}  // namespace wqe
