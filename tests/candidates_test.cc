#include "match/candidates.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "gen/datasets.h"
#include "gen/product_demo.h"
#include "gen/synthetic.h"
#include "match/candidate_set.h"
#include "match/filter_plan.h"
#include "workload/query_gen.h"

namespace wqe {
namespace {

TEST(CandidatesTest, LabelAndLiteralFiltering) {
  ProductDemo demo;
  const Graph& g = demo.graph();
  PatternQuery q = demo.Query();

  // Focus: Cellphone with price >= 840 -> P1, P2, P5.
  auto focus_cands = ComputeCandidates(g, q, q.focus());
  EXPECT_EQ(focus_cands.size(), 3u);
  for (NodeId v : focus_cands) {
    EXPECT_TRUE(IsCandidate(g, q, q.focus(), v));
  }

  // Carrier node (no literals): both carriers.
  auto carrier_cands = ComputeCandidates(g, q, 2);
  EXPECT_EQ(carrier_cands.size(), 2u);
}

TEST(CandidatesTest, WildcardLabelMatchesEverything) {
  ProductDemo demo;
  PatternQuery q;
  QNodeId u = q.AddNode(kWildcardSymbol);
  q.SetFocus(u);
  auto cands = ComputeCandidates(demo.graph(), q, u);
  EXPECT_EQ(cands.size(), demo.graph().num_nodes());
}

TEST(CandidatesTest, WildcardLabelWithLiteral) {
  ProductDemo demo;
  const Graph& g = demo.graph();
  PatternQuery q;
  QNodeId u = q.AddNode(kWildcardSymbol);
  q.SetFocus(u);
  q.AddLiteral(u, {g.schema().LookupAttr("discount"), CmpOp::kGe, Value::Num(20)});
  auto cands = ComputeCandidates(g, q, u);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0], demo.sprint());
}

TEST(CandidatesTest, AllCandidatesSkipsInactiveNodes) {
  ProductDemo demo;
  PatternQuery q = demo.Query();
  // Disconnect the sensor node.
  q.RemoveEdgeAt(static_cast<size_t>(q.FindEdge(q.focus(), 3)));
  auto all = AllCandidates(demo.graph(), q);
  EXPECT_FALSE(all[0].empty());
  EXPECT_TRUE(all[3].empty());  // inactive
}

TEST(CandidatesTest, CandidatesAreSorted) {
  ProductDemo demo;
  PatternQuery q = demo.Query();
  auto cands = ComputeCandidates(demo.graph(), q, q.focus());
  EXPECT_TRUE(std::is_sorted(cands.begin(), cands.end()));
}

// --- Compiled filter plans: the pipeline's probe must be interchangeable
// --- with the interpreted IsCandidate bit for bit.

TEST(FilterPlanTest, AdmitsAgreesWithIsCandidateOnDemo) {
  ProductDemo demo;
  const Graph& g = demo.graph();
  PatternQuery q = demo.Query();
  const match::QueryFilterPlans plans = match::QueryFilterPlans::Compile(q);
  for (QNodeId u = 0; u < q.num_nodes(); ++u) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(plans.at(u).Admits(g.view(), v), IsCandidate(g, q, u, v))
          << "u=" << u << " v=" << v;
    }
  }
}

TEST(FilterPlanTest, AdmitsAgreesWithIsCandidateOnGeneratedWorkloads) {
  for (const GraphSpec& spec : {ImdbLike(0.03), DbpediaLike(0.03)}) {
    Graph g = GenerateGraph(spec);
    for (const uint64_t seed : {3u, 33u, 333u}) {
      QueryGenOptions opts;
      opts.max_literals = 5;  // literal-heavy: multi-literal merged walks
      opts.seed = seed;
      auto q = GenerateGroundTruthQuery(g, opts);
      ASSERT_TRUE(q.has_value()) << "seed=" << seed;
      const match::QueryFilterPlans plans =
          match::QueryFilterPlans::Compile(*q);
      for (QNodeId u = 0; u < q->num_nodes(); ++u) {
        for (NodeId v = 0; v < g.num_nodes(); ++v) {
          ASSERT_EQ(plans.at(u).Admits(g.view(), v), IsCandidate(g, *q, u, v))
              << "seed=" << seed << " u=" << u << " v=" << v;
        }
      }
    }
  }
}

TEST(FilterPlanTest, CompiledCandidatesMatchInterpretedAndCountSeeds) {
  Graph g = GenerateGraph(ImdbLike(0.03));
  QueryGenOptions opts;
  opts.seed = 9;
  auto q = GenerateGroundTruthQuery(g, opts);
  ASSERT_TRUE(q.has_value());
  for (QNodeId u = 0; u < q->num_nodes(); ++u) {
    const match::FilterPlan plan = match::FilterPlan::Compile(q->node(u));
    uint64_t seeded = 0;
    const auto compiled = match::ComputeCandidatesCompiled(g, plan, &seeded);
    EXPECT_EQ(compiled, ComputeCandidates(g, *q, u)) << "u=" << u;
    const size_t bucket = plan.label() == kWildcardSymbol
                              ? g.num_nodes()
                              : g.NodesWithLabel(plan.label()).size();
    EXPECT_EQ(seeded, bucket) << "u=" << u;  // stage-1 funnel = seed size
    EXPECT_LE(compiled.size(), bucket);
  }
}

TEST(FilterPlanTest, LiteralHoldsAgreesWithLiteralMatches) {
  ProductDemo demo;
  const Graph& g = demo.graph();
  const AttrId price = g.schema().LookupAttr("price");
  const AttrId discount = g.schema().LookupAttr("discount");
  const std::vector<Literal> lits = {
      {price, CmpOp::kGe, Value::Num(840)},
      {price, CmpOp::kLt, Value::Num(840)},
      {price, CmpOp::kEq, Value::Num(790)},
      {discount, CmpOp::kEq, Value()},  // wildcard: presence only
      {discount, CmpOp::kGt, Value::Num(10)},
  };
  for (const Literal& lit : lits) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(match::LiteralHolds(g, v, lit), lit.Matches(g, v))
          << "attr=" << lit.attr << " v=" << v;
    }
  }
}

TEST(FilterPlanTest, NodeFingerprintIsTheCanonicalSignature) {
  ProductDemo demo;
  const Graph& g = demo.graph();
  PatternQuery q = demo.Query();
  // Sorted literal keys, "attr#op#value" entries, numeric rendering — the
  // exact legacy star-signature node encoding (persisted star-view caches
  // key on it, so the format is load-bearing).
  const QueryNode& focus = q.node(q.focus());
  std::string fp = match::FilterPlan::NodeFingerprint(focus);
  EXPECT_EQ(fp.find('L'), 0u);
  EXPECT_NE(fp.find('('), std::string::npos);
  EXPECT_EQ(fp.back(), ')');
  EXPECT_EQ(fp, match::FilterPlan::Compile(focus).fingerprint());
  // Literal order must not matter: the fingerprint sorts its keys.
  PatternQuery q2;
  QNodeId a = q2.AddNode(focus.label);
  PatternQuery q3;
  QNodeId b = q3.AddNode(focus.label);
  const AttrId price = g.schema().LookupAttr("price");
  const AttrId discount = g.schema().LookupAttr("discount");
  q2.AddLiteral(a, {price, CmpOp::kGe, Value::Num(1)});
  q2.AddLiteral(a, {discount, CmpOp::kGe, Value::Num(2)});
  q3.AddLiteral(b, {discount, CmpOp::kGe, Value::Num(2)});
  q3.AddLiteral(b, {price, CmpOp::kGe, Value::Num(1)});
  EXPECT_EQ(match::FilterPlan::NodeFingerprint(q2.node(a)),
            match::FilterPlan::NodeFingerprint(q3.node(b)));
}

// --- Selection-vector kernels: reserve-aware merges vs std oracles.

TEST(CandidateSetTest, KernelsMatchStdOracles) {
  const std::vector<NodeId> a = {1, 3, 5, 7, 9, 120, 4000};
  const std::vector<NodeId> b = {2, 3, 7, 100, 120, 5000};
  std::vector<NodeId> diff, uni, inter;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(diff));
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(uni));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(inter));
  EXPECT_EQ(match::CandidateSet::Difference(a, b), diff);
  EXPECT_EQ(match::CandidateSet::Union(a, b), uni);
  EXPECT_EQ(match::CandidateSet::Intersection(a, b), inter);
  // Degenerate shapes.
  const std::vector<NodeId> empty;
  EXPECT_EQ(match::CandidateSet::Difference(a, empty), a);
  EXPECT_TRUE(match::CandidateSet::Difference(empty, a).empty());
  EXPECT_EQ(match::CandidateSet::Union(a, empty), a);
  EXPECT_TRUE(match::CandidateSet::Intersection(a, empty).empty());
  EXPECT_TRUE(match::CandidateSet::Difference(a, a).empty());
  EXPECT_EQ(match::CandidateSet::Union(a, a), a);
  EXPECT_EQ(match::CandidateSet::Intersection(a, a), a);
}

TEST(CandidateSetTest, LegacyEntryPointsDelegateToKernels) {
  const std::vector<NodeId> a = {1, 4, 6, 9};
  const std::vector<NodeId> b = {4, 5, 9};
  EXPECT_EQ(SortedDifference(a, b), match::CandidateSet::Difference(a, b));
  EXPECT_EQ(SortedUnion(a, b), match::CandidateSet::Union(a, b));
}

TEST(CandidateSetTest, ContainsUsesBitsOrBinarySearch) {
  auto set = match::CandidateSet::FromSorted({10, 20, 30, 1000});
  EXPECT_TRUE(set.Contains(20));
  EXPECT_FALSE(set.Contains(21));
  set.BuildBits(/*max_words=*/64);  // range 10..1000 -> 16 words, engages
  EXPECT_TRUE(set.Contains(10));
  EXPECT_TRUE(set.Contains(1000));
  EXPECT_FALSE(set.Contains(999));
  EXPECT_FALSE(set.Contains(5));
  EXPECT_FALSE(set.Contains(2000));
}

TEST(RangeBitsetTest, EngagementCapAndProbeParity) {
  const std::vector<NodeId> members = {100, 101, 163, 164, 500};
  match::RangeBitset bits;
  bits.Assign(members, /*max_words=*/1);  // 100..500 needs 7 words: too wide
  EXPECT_FALSE(bits.engaged());
  bits.Assign(members, /*max_words=*/16);
  ASSERT_TRUE(bits.engaged());
  for (NodeId v = 0; v < 600; ++v) {
    EXPECT_EQ(bits.Test(v),
              std::binary_search(members.begin(), members.end(), v))
        << "v=" << v;
  }
  bits.Reset();
  EXPECT_FALSE(bits.engaged());
  // Empty member set never engages (nothing to probe).
  match::RangeBitset empty_bits;
  empty_bits.Assign({}, /*max_words=*/16);
  EXPECT_FALSE(empty_bits.engaged());
}

}  // namespace
}  // namespace wqe
