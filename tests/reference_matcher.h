#ifndef WQE_TESTS_REFERENCE_MATCHER_H_
#define WQE_TESTS_REFERENCE_MATCHER_H_

// Brute-force reference implementation of the §2.1 valuation semantics,
// used as a test oracle against the production Matcher / StarMatcher. It
// enumerates every injective assignment of active query nodes to graph
// nodes and checks all constraints directly — exponential, tiny inputs only.

#include <vector>

#include "graph/bfs.h"
#include "match/candidates.h"
#include "query/query.h"

namespace wqe {

class ReferenceMatcher {
 public:
  explicit ReferenceMatcher(const Graph& g) : g_(g), bfs_(g) {}

  /// Q(G) by exhaustive enumeration.
  std::vector<NodeId> Answer(const PatternQuery& q) {
    std::vector<NodeId> out;
    const auto active = q.ActiveNodes();
    for (NodeId v : ComputeCandidates(g_, q, q.focus())) {
      std::vector<NodeId> assign(q.num_nodes(), kInvalidNode);
      assign[q.focus()] = v;
      if (Extend(q, active, 0, assign)) out.push_back(v);
    }
    return out;
  }

 private:
  bool Extend(const PatternQuery& q, const std::vector<QNodeId>& active,
              size_t idx, std::vector<NodeId>& assign) {
    if (idx == active.size()) return CheckEdges(q, assign);
    const QNodeId u = active[idx];
    if (assign[u] != kInvalidNode) return Extend(q, active, idx + 1, assign);
    for (NodeId v = 0; v < g_.num_nodes(); ++v) {
      if (!IsCandidate(g_, q, u, v)) continue;
      bool used = false;
      for (QNodeId w : active) {
        if (assign[w] == v) used = true;
      }
      if (used) continue;
      assign[u] = v;
      if (Extend(q, active, idx + 1, assign)) {
        assign[u] = kInvalidNode;
        return true;
      }
      assign[u] = kInvalidNode;
    }
    return false;
  }

  bool CheckEdges(const PatternQuery& q, const std::vector<NodeId>& assign) {
    const auto mask = q.ActiveMask();
    for (const QueryEdge& e : q.edges()) {
      if (!mask[e.from] || !mask[e.to]) continue;
      if (bfs_.Distance(assign[e.from], assign[e.to], e.bound) == kInfDist) {
        return false;
      }
    }
    return true;
  }

  const Graph& g_;
  BoundedBfs bfs_;
};

}  // namespace wqe

#endif  // WQE_TESTS_REFERENCE_MATCHER_H_
