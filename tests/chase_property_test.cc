// Cross-cutting property sweeps over randomized workloads: normal-form
// equivalence (Lemma 4.1), AnsW answer invariants (Theorem 4.3 obligations),
// and closeness-measure sanity on every dataset preset.

#include <gtest/gtest.h>

#include "chase/answ.h"
#include "common/rng.h"
#include "gen/datasets.h"
#include "gen/synthetic.h"
#include "workload/disturb.h"
#include "workload/why_factory.h"

namespace wqe {
namespace {

// ---- Lemma 4.1: a canonical operator sequence and its normal form rewrite
// a query identically. Random sequences are drawn via the disturber (whose
// outputs are applicable by construction) and filtered to canonical ones.

class NormalFormPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(NormalFormPropertyTest, CanonicalSequenceEqualsItsNormalForm) {
  Graph g = GenerateGraph(ImdbLike(0.03, 100 + static_cast<uint64_t>(GetParam())));
  ActiveDomains adom(g);
  DistanceIndex dist(g);
  Matcher matcher(g, &dist);

  size_t checked = 0;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    QueryGenOptions qopts;
    qopts.seed = seed * 13 + static_cast<uint64_t>(GetParam());
    qopts.num_edges = 2 + seed % 3;
    auto gt = GenerateGroundTruthQuery(g, matcher, qopts);
    if (!gt.has_value()) continue;

    DisturbOptions dopts;
    dopts.seed = seed * 31;
    dopts.num_ops = 4;
    Disturbed d = DisturbQuery(g, adom, *gt, dopts);
    if (d.injected.empty() || !d.injected.IsCanonical()) continue;
    ++checked;

    PatternQuery via_sequence = *gt;
    ASSERT_TRUE(d.injected.ApplyAll(&via_sequence, dopts.max_bound));
    PatternQuery via_normal_form = *gt;
    OpSequence normal = d.injected.NormalForm();
    ASSERT_TRUE(normal.IsNormalForm());
    ASSERT_TRUE(normal.ApplyAll(&via_normal_form, dopts.max_bound))
        << normal.ToString(g.schema());
    EXPECT_EQ(via_sequence.Fingerprint(), via_normal_form.Fingerprint())
        << "seq: " << d.injected.ToString(g.schema());

    // Equal rewrites have equal answers.
    EXPECT_EQ(matcher.Answer(via_sequence), matcher.Answer(via_normal_form));
  }
  EXPECT_GT(checked, 3u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormalFormPropertyTest, ::testing::Values(1, 2, 3));

// ---- AnsW answer obligations on randomized Why-questions, across all four
// dataset presets: every reported answer satisfies ℰ (or is the explicit
// original-query fallback), stays within budget, carries a canonical
// normal-form sequence, and its closeness never exceeds cl*.

class AnsWInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(AnsWInvariantTest, ReportedAnswersAreValid) {
  const auto specs = AllDatasets(0.02);
  const GraphSpec& spec = specs[static_cast<size_t>(GetParam()) % specs.size()];
  Graph g = GenerateGraph(spec);

  WhyFactoryOptions opts;
  opts.query.num_edges = 2;
  opts.disturb.num_ops = 2;
  opts.seed = 500 + static_cast<uint64_t>(GetParam());
  auto cases = MakeBenchCases(g, 3, opts);

  ChaseOptions chase;
  chase.budget = 3;
  chase.top_k = 3;
  chase.max_steps = 1500;

  for (const BenchCase& c : cases) {
    ChaseContext ctx(g, c.question, chase);
    ChaseResult r = AnsWWithContext(ctx);
    ASSERT_TRUE(r.found());
    for (size_t i = 0; i < r.answers.size(); ++i) {
      const WhyAnswer& a = r.answers[i];
      EXPECT_LE(a.cost, chase.budget + 1e-9);
      EXPECT_TRUE(a.ops.IsNormalForm());
      EXPECT_TRUE(a.ops.IsCanonical());
      EXPECT_LE(a.closeness, r.cl_star + 1e-9);
      // The non-satisfying fallback only ever appears alone at rank 1.
      if (!a.satisfies_exemplar) {
        EXPECT_EQ(r.answers.size(), 1u);
        EXPECT_TRUE(a.ops.empty());
      }
      // Replaying the operators from the original query reproduces the
      // reported rewrite and its answer.
      PatternQuery replay = c.question.query;
      ASSERT_TRUE(a.ops.ApplyAll(&replay, chase.max_bound));
      EXPECT_EQ(replay.Fingerprint(), a.rewrite.Fingerprint());
      auto eval = ctx.Evaluate(replay, a.ops);
      EXPECT_EQ(eval->matches, a.matches);
      EXPECT_NEAR(eval->cl, a.closeness, 1e-9);
    }
    // Ranked by closeness.
    for (size_t i = 1; i < r.answers.size(); ++i) {
      EXPECT_GE(r.answers[i - 1].closeness + 1e-12, r.answers[i].closeness);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Datasets, AnsWInvariantTest,
                         ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace wqe
