// Tests for the concurrent serving layer (serve::Server + serve::Replay):
// byte-identical answers under a many-client hammer, deadlines enforced from
// admission (queue wait counts against the budget), deterministic load
// shedding with structured kOverloaded statuses, per-request observability
// isolation with shared-artifact traffic attributed to the owner scope, and
// a query-log trace surviving the full record -> replay round trip.

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "chase/eval.h"
#include "chase/solve.h"
#include "gen/datasets.h"
#include "gen/synthetic.h"
#include "obs/query_log.h"
#include "serve/replay.h"
#include "serve/server.h"
#include "workload/why_factory.h"

namespace wqe {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() /
          (std::string("wqe_serve_") + name + "_" +
           std::to_string(::getpid()) + ".jsonl"))
      .string();
}

Graph TestGraph() { return GenerateGraph(ImdbLike(0.05)); }

std::vector<BenchCase> TestCases(const Graph& g, size_t n) {
  WhyFactoryOptions factory;
  factory.query.num_edges = 3;
  factory.query.max_literals = 3;
  factory.disturb.num_ops = 3;
  factory.seed = 7;
  return MakeBenchCases(g, n, factory);
}

ChaseOptions TestChase() {
  ChaseOptions opts;
  opts.budget = 3;
  opts.beam = 2;
  opts.max_steps = 2000;
  return opts;
}

Request MakeRequest(const BenchCase& c, const ChaseOptions& opts, uint64_t id) {
  Request req;
  req.question = c.question;
  req.options = opts;
  req.algorithm = Algorithm::kAnsW;
  req.id = id;
  return req;
}

/// Answer identity: fingerprint of the best rewrite plus its matches — what
/// "byte-identical" means for a response.
std::string AnswerKey(const Response& resp) {
  if (!resp.found()) return "<none>";
  std::string key = resp.best().rewrite.Fingerprint();
  key += '|';
  for (NodeId v : resp.best().matches) {
    key += std::to_string(v);
    key += ',';
  }
  return key;
}

TEST(ServeTest, HammerMatchesSequentialByteForByte) {
  Graph g = TestGraph();
  const auto cases = TestCases(g, 3);
  ASSERT_FALSE(cases.empty());
  const ChaseOptions opts = TestChase();

  // Sequential reference through the same public entry point, no sharing.
  std::vector<std::string> reference;
  for (size_t i = 0; i < cases.size(); ++i) {
    const Response resp = Execute(g, MakeRequest(cases[i], opts, i));
    ASSERT_TRUE(resp.ok()) << resp.status.ToString();
    reference.push_back(AnswerKey(resp));
  }

  serve::ServerOptions sopts;
  sopts.concurrency = 4;
  serve::Server server(g, sopts);

  constexpr size_t kPasses = 6;
  std::vector<std::future<Response>> futures;
  for (size_t pass = 0; pass < kPasses; ++pass) {
    for (size_t i = 0; i < cases.size(); ++i) {
      futures.push_back(server.Submit(
          MakeRequest(cases[i], opts, pass * cases.size() + i)));
    }
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    const Response resp = futures[i].get();
    ASSERT_TRUE(resp.ok()) << resp.status.ToString();
    EXPECT_EQ(resp.id, i);
    EXPECT_EQ(AnswerKey(resp), reference[i % reference.size()])
        << "concurrent solve diverged from the sequential reference";
  }
  const serve::Server::Stats stats = server.stats();
  EXPECT_EQ(stats.admitted, futures.size());
  EXPECT_EQ(stats.completed, futures.size());
  EXPECT_EQ(stats.shed, 0u);
}

TEST(ServeTest, DeadlineUnderLoadKeepsAnytimeAnswers) {
  Graph g = GenerateGraph(DbpediaLike(0.2));
  const auto cases = TestCases(g, 2);
  ASSERT_FALSE(cases.empty());

  ChaseOptions opts = TestChase();
  opts.max_steps = 1000000;  // the deadline, not the step cap, must stop us
  // Far below one solve's work on this graph, so the clock — not search
  // exhaustion — ends every request regardless of machine speed.
  opts.time_limit_seconds = 1e-4;

  serve::ServerOptions sopts;
  sopts.concurrency = 2;
  serve::Server server(g, sopts);

  std::vector<std::future<Response>> futures;
  for (size_t i = 0; i < 8; ++i) {
    futures.push_back(
        server.Submit(MakeRequest(cases[i % cases.size()], opts, i)));
  }
  size_t deadline_hits = 0;
  for (auto& f : futures) {
    const Response resp = f.get();
    ASSERT_TRUE(resp.ok()) << resp.status.ToString();
    if (resp.result.termination() == TerminationReason::kDeadline) {
      ++deadline_hits;
      // The anytime contract survives the serving layer: a deadline under
      // load still returns the best answer found so far, never nothing.
      EXPECT_TRUE(resp.found());
    }
  }
  // With 8 requests racing 20ms budgets on this graph, at least one must be
  // stopped by the clock — otherwise the test is not exercising the path.
  EXPECT_GT(deadline_hits, 0u);
}

TEST(ServeTest, QueueWaitCountsAgainstDeadline) {
  Graph g = TestGraph();
  const auto cases = TestCases(g, 1);
  ASSERT_FALSE(cases.empty());

  std::mutex m;
  std::condition_variable cv;
  bool release = false;
  serve::ServerOptions sopts;
  sopts.concurrency = 1;
  sopts.on_execute = [&](const Request&) {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return release; });
  };
  serve::Server server(g, sopts);

  ChaseOptions opts = TestChase();
  auto blocker = server.Submit(MakeRequest(cases[0], opts, 0));

  // The second request's 1ms budget burns away while it waits behind the
  // blocked request: by execution time its deadline (armed at admission)
  // has expired, so it must terminate kDeadline with the root answer.
  ChaseOptions timed = opts;
  timed.time_limit_seconds = 0.001;
  auto queued = server.Submit(MakeRequest(cases[0], timed, 1));

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  {
    std::lock_guard<std::mutex> lock(m);
    release = true;
  }
  cv.notify_all();

  ASSERT_TRUE(blocker.get().ok());
  const Response late = queued.get();
  ASSERT_TRUE(late.ok()) << late.status.ToString();
  EXPECT_EQ(late.result.termination(), TerminationReason::kDeadline);
  EXPECT_TRUE(late.found());
  EXPECT_GT(late.queue_seconds, 0.0);
}

TEST(ServeTest, SaturationShedsWithStructuredStatus) {
  Graph g = TestGraph();
  const auto cases = TestCases(g, 1);
  ASSERT_FALSE(cases.empty());
  const ChaseOptions opts = TestChase();

  std::mutex m;
  std::condition_variable cv;
  bool release = false;
  serve::ServerOptions sopts;
  sopts.concurrency = 1;
  sopts.max_queue = 1;
  sopts.on_execute = [&](const Request&) {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return release; });
  };
  serve::Server server(g, sopts);

  // First request occupies the single executor (blocked in the hook)...
  auto executing = server.Submit(MakeRequest(cases[0], opts, 0));
  while (true) {
    const serve::Server::Stats s = server.stats();
    if (s.executing == 1 && s.queued == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // ...the second fills the queue bound, and the third must be shed — a
  // deterministic saturation, no timing races.
  auto waiting = server.Submit(MakeRequest(cases[0], opts, 1));
  auto shed = server.Submit(MakeRequest(cases[0], opts, 2));

  const Response rejected = shed.get();  // sheds complete immediately
  EXPECT_EQ(rejected.status.code(), Status::Code::kOverloaded);
  EXPECT_FALSE(rejected.found());
  EXPECT_EQ(rejected.id, 2u);

  {
    std::lock_guard<std::mutex> lock(m);
    release = true;
  }
  cv.notify_all();
  EXPECT_TRUE(executing.get().ok());
  EXPECT_TRUE(waiting.get().ok());

  const serve::Server::Stats stats = server.stats();
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(server.observability().metrics.counter("serve.shed").Value(), 1u);
}

TEST(ServeTest, InvalidRequestRejectedAtAdmission) {
  Graph g = TestGraph();
  const auto cases = TestCases(g, 1);
  ASSERT_FALSE(cases.empty());
  serve::Server server(g, {});

  ChaseOptions bad = TestChase();
  bad.beam = 0;
  const Response resp = server.Serve(MakeRequest(cases[0], bad, 0));
  EXPECT_EQ(resp.status.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(server.stats().admitted, 0u);
}

TEST(ServeTest, SharedCacheTrafficStaysInOwnerScope) {
  Graph g = TestGraph();
  const auto cases = TestCases(g, 2);
  ASSERT_FALSE(cases.empty());

  // The test owns the shared artifacts and wires the cache's observability
  // exactly once (the ownership rule the server follows).
  obs::Observability owner;
  ViewCache shared_cache;
  shared_cache.set_observability(&owner);
  Matcher::SharedPlans shared_plans;
  GraphIndexes indexes(g, /*num_threads=*/1);

  obs::Observability req_a, req_b;
  for (size_t i = 0; i < cases.size(); ++i) {
    ChaseOptions opts = TestChase();
    opts.observability = i == 0 ? &req_a : &req_b;
    ChaseContext ctx(g, &indexes, &shared_cache, &shared_plans,
                     cases[i].question, opts);
    const Response resp = ExecuteWithContext(ctx, Algorithm::kAnsW);
    ASSERT_TRUE(resp.ok());
  }

  // Shared-cache traffic lands in the owner scope only; the per-request
  // scopes never see another request's (or the cache's) counters.
  const uint64_t owner_traffic =
      owner.metrics.counter("cache.hits").Value() +
      owner.metrics.counter("cache.misses").Value();
  EXPECT_GT(owner_traffic, 0u);
  for (obs::Observability* req : {&req_a, &req_b}) {
    EXPECT_EQ(req->metrics.counter("cache.hits").Value(), 0u);
    EXPECT_EQ(req->metrics.counter("cache.misses").Value(), 0u);
  }
}

TEST(ServeTest, PerRequestCountersFoldIntoServerScope) {
  Graph g = TestGraph();
  const auto cases = TestCases(g, 2);
  ASSERT_FALSE(cases.empty());
  const ChaseOptions opts = TestChase();

  obs::Observability scope;
  serve::ServerOptions sopts;
  sopts.concurrency = 2;
  sopts.observability = &scope;
  {
    serve::Server server(g, sopts);
    std::vector<std::future<Response>> futures;
    for (size_t i = 0; i < 4; ++i) {
      futures.push_back(
          server.Submit(MakeRequest(cases[i % cases.size()], opts, i)));
    }
    for (auto& f : futures) ASSERT_TRUE(f.get().ok());

    EXPECT_EQ(scope.metrics.counter("serve.admitted").Value(), 4u);
    EXPECT_EQ(scope.metrics.counter("serve.completed").Value(), 4u);
    EXPECT_EQ(scope.metrics.histogram("serve.latency_ns").Snap().count, 4u);
    // Phase totals merged across requests: the per-solve breakdowns carry a
    // top-level solve phase each, so the merge must count every request.
    uint64_t phase_total = 0;
    for (const obs::PhaseStat& p : server.MergedPhases()) {
      phase_total += p.count;
    }
    EXPECT_GT(phase_total, 0u);
  }
}

TEST(ServeTest, QueryLogRoundTripThroughReplay) {
  Graph g = TestGraph();
  const auto cases = TestCases(g, 3);
  ASSERT_FALSE(cases.empty());
  const std::string path = TempPath("roundtrip");
  std::remove(path.c_str());

  // Record: sequential solves through the public entry point, provenance
  // into a query log.
  {
    auto log = obs::QueryLog::Open(path);
    ASSERT_TRUE(log.ok()) << log.status().ToString();
    ChaseOptions opts = TestChase();
    opts.query_log = log.value().get();
    GraphIndexes indexes(g, /*num_threads=*/1);
    for (size_t i = 0; i < cases.size(); ++i) {
      const Response resp = Execute(g, &indexes, nullptr, nullptr,
                                    MakeRequest(cases[i], opts, i));
      ASSERT_TRUE(resp.ok()) << resp.status.ToString();
    }
    ASSERT_EQ(log.value()->records_written(), cases.size());
  }

  auto loaded = obs::QueryLog::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().records.size(), cases.size());

  // Replay the trace concurrently: every record must parse back, solve, and
  // reproduce the recorded answer fingerprint exactly.
  serve::ServerOptions sopts;
  sopts.concurrency = 3;
  serve::Server server(g, sopts);
  serve::ReplayOptions ropts;
  ropts.options = TestChase();
  ropts.repeat = 2;
  const serve::ReplayStats stats =
      serve::Replay(server, g, loaded.value().records, ropts);

  EXPECT_EQ(stats.skipped, 0u);
  EXPECT_EQ(stats.submitted, cases.size() * 2);
  EXPECT_EQ(stats.completed, stats.submitted);
  EXPECT_EQ(stats.mismatched, 0u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.failed, 0u);
  // Every completion contributed one admission-to-completion measurement.
  EXPECT_EQ(stats.latency_samples, stats.completed);
  EXPECT_NE(stats.ToString().find("samples"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ReplayStatsTest, EmptyLatencySnapshotIsReportedExplicitly) {
  // A run where nothing completed (everything shed, or no replayable
  // records) has no latency samples: the quantile fields stay an explicit 0
  // and ToString says so instead of printing fabricated zeros as quantiles.
  serve::ReplayStats stats;
  EXPECT_EQ(stats.latency_samples, 0u);
  EXPECT_DOUBLE_EQ(stats.latency_p50_ms, 0.0);
  EXPECT_NE(stats.ToString().find("latency ms: no samples"),
            std::string::npos);

  stats.latency_samples = 3;
  stats.latency_mean_ms = 1.5;
  EXPECT_EQ(stats.ToString().find("no samples"), std::string::npos);
  EXPECT_NE(stats.ToString().find("(3 samples)"), std::string::npos);
}

TEST(ServeTest, OpenLoopReplayPacesAgainstAbsoluteDeadlines) {
  Graph g = TestGraph();
  const auto cases = TestCases(g, 2);
  ASSERT_FALSE(cases.empty());
  const std::string path = TempPath("pacing");
  std::remove(path.c_str());
  {
    auto log = obs::QueryLog::Open(path);
    ASSERT_TRUE(log.ok());
    ChaseOptions opts = TestChase();
    opts.query_log = log.value().get();
    GraphIndexes indexes(g, /*num_threads=*/1);
    for (size_t i = 0; i < cases.size(); ++i) {
      const Response resp = Execute(g, &indexes, nullptr, nullptr,
                                    MakeRequest(cases[i], opts, i));
      ASSERT_TRUE(resp.ok()) << resp.status.ToString();
    }
  }
  auto loaded = obs::QueryLog::Load(path);
  ASSERT_TRUE(loaded.ok());

  serve::ServerOptions sopts;
  sopts.concurrency = 2;
  serve::Server server(g, sopts);
  serve::ReplayOptions ropts;
  ropts.options = TestChase();
  ropts.repeat = 4;
  ropts.qps = 100;  // 10ms spacing; 8 arrivals span >= 70ms by construction
  const serve::ReplayStats stats =
      serve::Replay(server, g, loaded.value().records, ropts);

  ASSERT_GT(stats.submitted, 1u);
  // sleep_until against absolute send deadlines: no request may depart
  // before its scheduled instant, so the achieved arrival rate can never
  // exceed the requested one (only lag it on an overloaded machine).
  EXPECT_GT(stats.arrival_qps, 0.0);
  EXPECT_LE(stats.arrival_qps, ropts.qps * 1.05);
  EXPECT_GE(stats.submit_seconds,
            static_cast<double>(stats.submitted - 1) / ropts.qps * 0.95);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace wqe
