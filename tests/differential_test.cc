#include "chase/differential.h"

#include <gtest/gtest.h>

#include "chase/answ.h"
#include "gen/product_demo.h"

namespace wqe {
namespace {

class DifferentialFixture : public ::testing::Test {
 protected:
  DifferentialFixture() {
    opts_.budget = 4;
    ctx_ = std::make_unique<ChaseContext>(demo_.graph(), demo_.Question(), opts_);
  }

  ProductDemo demo_;
  ChaseOptions opts_;
  std::unique_ptr<ChaseContext> ctx_;
};

TEST_F(DifferentialFixture, TracksGainsAndLossesPerOperator) {
  const Schema& schema = demo_.graph().schema();
  OpSequence ops;
  Op rxl;
  rxl.kind = OpKind::kRxL;
  rxl.u = 0;
  rxl.lit = {schema.LookupAttr("price"), CmpOp::kGe, Value::Num(840)};
  rxl.new_lit = {schema.LookupAttr("price"), CmpOp::kGe, Value::Num(790)};
  ops.Append(rxl);
  Op addl;
  addl.kind = OpKind::kAddL;
  addl.u = 2;
  addl.lit = {schema.LookupAttr("discount"), CmpOp::kEq, Value::Num(25)};
  ops.Append(addl);

  DifferentialTable table = BuildDifferentialTable(*ctx_, ops);
  ASSERT_EQ(table.entries().size(), 2u);

  // Step 1: the price relaxation gains P4 (price 795, has sensor) as a
  // relevant match.
  const DifferentialEntry& e1 = table.entries()[0];
  ASSERT_EQ(e1.gained.size(), 1u);
  EXPECT_EQ(e1.gained[0].first, demo_.p(4));
  EXPECT_EQ(e1.gained[0].second, Relevance::kRM);
  EXPECT_TRUE(e1.lost.empty());

  // Step 2: the discount constraint drops P1 and P2 (AT&T customers).
  const DifferentialEntry& e2 = table.entries()[1];
  EXPECT_TRUE(e2.gained.empty());
  ASSERT_EQ(e2.lost.size(), 2u);
}

TEST_F(DifferentialFixture, RendersHumanReadableExplanation) {
  const Schema& schema = demo_.graph().schema();
  OpSequence ops;
  Op rml;  // drop the price literal first so the sensor edge is P3's blocker
  rml.kind = OpKind::kRmL;
  rml.u = 0;
  rml.lit = {schema.LookupAttr("price"), CmpOp::kGe, Value::Num(840)};
  ops.Append(rml);
  Op rme;
  rme.kind = OpKind::kRmE;
  rme.u = 0;
  rme.v = 3;
  rme.bound = 2;
  ops.Append(rme);
  DifferentialTable table = BuildDifferentialTable(*ctx_, ops);
  const std::string text = table.ToString(demo_.graph());
  // "P3 becomes a relevant match due to the removal of e" (§5.4).
  EXPECT_NE(text.find("RmE"), std::string::npos);
  EXPECT_NE(text.find("P3"), std::string::npos);
  EXPECT_NE(text.find("relevant match"), std::string::npos);
}

TEST_F(DifferentialFixture, NoChangeStepIsExplicit) {
  const Schema& schema = demo_.graph().schema();
  OpSequence ops;
  Op addl;  // RAM >= 4 holds for every current match: no answer change
  addl.kind = OpKind::kAddL;
  addl.u = 0;
  addl.lit = {schema.LookupAttr("ram"), CmpOp::kGe, Value::Num(4)};
  ops.Append(addl);
  DifferentialTable table = BuildDifferentialTable(*ctx_, ops);
  ASSERT_EQ(table.entries().size(), 1u);
  EXPECT_TRUE(table.entries()[0].gained.empty());
  EXPECT_TRUE(table.entries()[0].lost.empty());
  EXPECT_NE(table.ToString(demo_.graph()).find("no answer change"),
            std::string::npos);
}

TEST_F(DifferentialFixture, ExplainsOptimalRewriteEndToEnd) {
  ChaseResult result = AnsWWithContext(*ctx_);
  ASSERT_TRUE(result.found());
  DifferentialTable table = BuildDifferentialTable(*ctx_, result.best().ops);
  EXPECT_EQ(table.entries().size(), result.best().ops.size());
  // Net gains across the table must equal the answer delta.
  std::set<NodeId> current(ctx_->root()->matches.begin(),
                           ctx_->root()->matches.end());
  for (const DifferentialEntry& e : table.entries()) {
    for (const auto& [v, st] : e.gained) current.insert(v);
    for (const auto& [v, st] : e.lost) current.erase(v);
  }
  std::vector<NodeId> final_matches(current.begin(), current.end());
  EXPECT_EQ(final_matches, result.best().matches);
}

}  // namespace
}  // namespace wqe
