#include "chase/ans_heu.h"

#include <gtest/gtest.h>

#include "chase/answ.h"
#include "gen/product_demo.h"

namespace wqe {
namespace {

ChaseOptions DemoOptions(size_t beam) {
  ChaseOptions opts;
  opts.budget = 4;
  opts.beam = beam;
  return opts;
}

TEST(AnsHeuTest, FindsSatisfyingRewriteOnDemo) {
  ProductDemo demo;
  ChaseResult r = AnsHeu(demo.graph(), demo.Question(), DemoOptions(3));
  ASSERT_TRUE(r.found());
  EXPECT_TRUE(r.best().satisfies_exemplar);
  EXPECT_GT(r.best().closeness, 0.0);
}

TEST(AnsHeuTest, NeverBeatsExactAnsW) {
  ProductDemo demo;
  const double exact =
      AnsW(demo.graph(), demo.Question(), DemoOptions(1)).best().closeness;
  for (size_t beam : {1u, 2u, 4u}) {
    const double heu =
        AnsHeu(demo.graph(), demo.Question(), DemoOptions(beam)).best().closeness;
    EXPECT_LE(heu, exact + 1e-9) << "beam " << beam;
  }
}

TEST(AnsHeuTest, WiderBeamNeverLosesOnDemo) {
  ProductDemo demo;
  double prev = -1e18;
  for (size_t beam : {1u, 2u, 3u, 5u}) {
    ChaseResult r = AnsHeu(demo.graph(), demo.Question(), DemoOptions(beam));
    ASSERT_TRUE(r.found());
    EXPECT_GE(r.best().closeness + 1e-9, prev) << "beam " << beam;
    prev = r.best().closeness;
  }
}

TEST(AnsHeuTest, BudgetRespected) {
  ProductDemo demo;
  ChaseResult r = AnsHeu(demo.graph(), demo.Question(), DemoOptions(3));
  EXPECT_LE(r.best().cost, 4.0 + 1e-9);
}

TEST(AnsHeuTest, RandomVariantStillProducesAnswers) {
  ProductDemo demo;
  ChaseOptions opts = DemoOptions(3);
  opts.random_ops = true;
  opts.seed = 17;
  ChaseResult r = AnsHeu(demo.graph(), demo.Question(), opts);
  ASSERT_TRUE(r.found());
  // AnsHeuB explores the same op universe in random order; with beam 3 on
  // the tiny demo it still finds a satisfying rewrite.
  EXPECT_TRUE(r.best().satisfies_exemplar);
}

TEST(AnsHeuTest, RandomVariantIsSeedDeterministic) {
  ProductDemo demo;
  ChaseOptions opts = DemoOptions(2);
  opts.random_ops = true;
  opts.seed = 5;
  ChaseResult a = AnsHeu(demo.graph(), demo.Question(), opts);
  ChaseResult b = AnsHeu(demo.graph(), demo.Question(), opts);
  EXPECT_EQ(a.best().rewrite.Fingerprint(), b.best().rewrite.Fingerprint());
}

TEST(AnsHeuTest, DeadlineHonored) {
  ProductDemo demo;
  ChaseOptions opts = DemoOptions(3);
  opts.deadline = Deadline::After(0.0);
  ChaseResult r = AnsHeu(demo.graph(), demo.Question(), opts);
  ASSERT_TRUE(r.found());  // anytime fallback
}

TEST(AnsHeuTest, RewritesAreNormalForm) {
  ProductDemo demo;
  ChaseResult r = AnsHeu(demo.graph(), demo.Question(), DemoOptions(3));
  EXPECT_TRUE(r.best().ops.IsNormalForm());
}

}  // namespace
}  // namespace wqe
