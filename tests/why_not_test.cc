#include "chase/why_not.h"

#include <gtest/gtest.h>

#include "gen/product_demo.h"

namespace wqe {
namespace {

class WhyNotFixture : public ::testing::Test {
 protected:
  WhyNotFixture() {
    opts_.budget = 4;
    ctx_ = std::make_unique<ChaseContext>(demo_.graph(), demo_.Question(), opts_);
  }

  ProductDemo demo_;
  ChaseOptions opts_;
  std::unique_ptr<ChaseContext> ctx_;
};

TEST_F(WhyNotFixture, MatchNeedsNoExplanation) {
  WhyNotReport r = ExplainWhyNot(*ctx_, demo_.p(1));
  EXPECT_TRUE(r.is_match);
  EXPECT_TRUE(r.failures.empty());
  EXPECT_NE(r.ToString(demo_.graph()).find("already matches"),
            std::string::npos);
}

TEST_F(WhyNotFixture, DiagnosesP3PriceAndSensor) {
  // The paper's Example 1.2: P3 was not in Q(G) since it has no wearable
  // sensor; the price constraint also blocks it.
  WhyNotReport r = ExplainWhyNot(*ctx_, demo_.p(3));
  EXPECT_FALSE(r.is_match);
  ASSERT_EQ(r.failures.size(), 2u);

  bool price_failure = false, sensor_failure = false;
  for (const auto& f : r.failures) {
    if (f.condition.find("price") != std::string::npos) {
      price_failure = true;
      EXPECT_EQ(f.repair.kind, OpKind::kRmL);
    }
    if (f.condition.find("Sensor") != std::string::npos) {
      sensor_failure = true;
      EXPECT_EQ(f.repair.kind, OpKind::kRmE);
    }
  }
  EXPECT_TRUE(price_failure);
  EXPECT_TRUE(sensor_failure);
  EXPECT_TRUE(r.repair_verified);
  EXPECT_LE(r.repair_cost, 4.0);
}

TEST_F(WhyNotFixture, DiagnosesP4PriceOnly) {
  // P4 has a sensor through the watch; only the price blocks it.
  WhyNotReport r = ExplainWhyNot(*ctx_, demo_.p(4));
  ASSERT_EQ(r.failures.size(), 1u);
  EXPECT_NE(r.failures[0].condition.find("price"), std::string::npos);
  EXPECT_TRUE(r.repair_verified);
}

TEST_F(WhyNotFixture, LabelMismatchIsTerminal) {
  WhyNotReport r = ExplainWhyNot(*ctx_, demo_.sprint());
  EXPECT_FALSE(r.is_match);
  ASSERT_EQ(r.failures.size(), 1u);
  EXPECT_NE(r.failures[0].condition.find("not repairable"), std::string::npos);
  EXPECT_TRUE(r.repair.empty());
}

TEST_F(WhyNotFixture, RenderedReportNamesRepairs) {
  WhyNotReport r = ExplainWhyNot(*ctx_, demo_.p(3));
  const std::string text = r.ToString(demo_.graph());
  EXPECT_NE(text.find("P3"), std::string::npos);
  EXPECT_NE(text.find("RmL"), std::string::npos);
  EXPECT_NE(text.find("RmE"), std::string::npos);
  EXPECT_NE(text.find("verified"), std::string::npos);
}

}  // namespace
}  // namespace wqe
