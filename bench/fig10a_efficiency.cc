// Fig 10(a): efficiency of answering Why-questions — mean time per question
// for AnsHeu / AnsW / AnsWnc / AnsWb / FMAnsW on all four datasets, plus the
// §7 aggregate speedup claims (AnsW vs FMAnsW / AnsWb / AnsWnc, and the
// AnsHeu speed/quality trade-off).

#include "bench_common.h"

using namespace wqe;
using namespace wqe::bench;

int main(int argc, char** argv) {
  BenchEnv env(argc, argv);
  Header("fig10a", "Why-question efficiency per dataset and algorithm");

  ChaseOptions base = DefaultChase();
  Aggregate answ_time, answnc_time, answb_time, fm_time, heu_time;
  Aggregate answ_cl, heu_cl;

  for (const GraphSpec& spec : AllDatasets(env.scale)) {
    Graph g = GenerateGraph(spec);
    auto cases = MakeBenchCases(g, env.queries, DefaultFactory(env.seed));
    ExperimentRunner runner(g, std::move(cases), env.threads, env.cache_dir,
                            &BenchObs());

    for (const AlgoSpec& algo : StandardAlgos(base)) {
      AlgoSummary s = runner.Run(algo);
      PrintRow("fig10a", spec.name, algo.name, s);
      if (algo.name == "AnsW") {
        answ_time.Add(s.seconds.Mean());
        answ_cl.Add(s.closeness.Mean());
      } else if (algo.name == "AnsWnc") {
        answnc_time.Add(s.seconds.Mean());
      } else if (algo.name == "AnsWb") {
        answb_time.Add(s.seconds.Mean());
      } else if (algo.name == "FMAnsW") {
        fm_time.Add(s.seconds.Mean());
      } else {
        heu_time.Add(s.seconds.Mean());
        heu_cl.Add(s.closeness.Mean());
      }
    }
  }

  const double answ = answ_time.Mean();
  std::printf(
      "#AGG AnsW=%.3fs AnsWnc=%.3fs AnsWb=%.3fs FMAnsW=%.3fs AnsHeu=%.3fs | "
      "speedup(AnsW vs AnsWnc)=%.2fx (AnsW vs AnsWb)=%.2fx (AnsW vs "
      "FMAnsW)=%.2fx (AnsHeu vs AnsW)=%.2fx\n",
      answ, answnc_time.Mean(), answb_time.Mean(), fm_time.Mean(),
      heu_time.Mean(), answnc_time.Mean() / answ, answb_time.Mean() / answ,
      fm_time.Mean() / answ, answ / heu_time.Mean());

  // Paper shape: optimizations help (AnsW <= AnsWnc <= AnsWb) and the
  // heuristic converges fastest.
  Shape(answ <= answnc_time.Mean() * 1.15 &&
            answnc_time.Mean() <= answb_time.Mean() * 1.15,
        "AnsW <= AnsWnc <= AnsWb (caching + pruning reduce time)");
  Shape(heu_time.Mean() <= answ,
        "AnsHeu is the fastest configuration (no backtracking)");
  Shape(heu_cl.Mean() <= answ_cl.Mean() + 1e-9,
        "AnsHeu trades answer quality for speed (closeness <= AnsW's)");
  return env.Finish();
}
