// Fig 12(a): Why-Many efficiency — ApxWhyM vs AnsW / AnsWb / FMAnsW on
// DBpedia-like and IMDB-like. The fixed-parameter approximation avoids the
// chase-tree search entirely.

#include "bench_common.h"

using namespace wqe;
using namespace wqe::bench;

int main(int argc, char** argv) {
  BenchEnv env(argc, argv);
  Header("fig12a", "Why-Many efficiency (dbpedia_like, imdb_like)");

  ChaseOptions base = DefaultChase();
  Aggregate apx_time, answ_time, answb_time, fm_time;

  for (const GraphSpec& spec : {DbpediaLike(env.scale), ImdbLike(env.scale)}) {
    Graph g = GenerateGraph(spec);
    // Why-Many setup: disturbances biased toward relaxation so the disturbed
    // query returns too many (irrelevant) matches.
    WhyFactoryOptions factory = DefaultFactory(env.seed);
    factory.disturb.refine_prob = 0.1;
    auto cases = MakeBenchCases(g, env.queries, factory);
    ExperimentRunner runner(g, std::move(cases), env.threads, env.cache_dir,
                            &BenchObs());

    for (AlgoSpec algo : {MakeApxWhyM(base), MakeAnsW(base), MakeAnsWb(base),
                          MakeFMAnsW(base)}) {
      AlgoSummary s = runner.Run(algo);
      PrintRow("fig12a", spec.name, algo.name, s);
      if (algo.name == "ApxWhyM") apx_time.Add(s.seconds.Mean());
      if (algo.name == "AnsW") answ_time.Add(s.seconds.Mean());
      if (algo.name == "AnsWb") answb_time.Add(s.seconds.Mean());
      if (algo.name == "FMAnsW") fm_time.Add(s.seconds.Mean());
    }
  }

  std::printf("#AGG ApxWhyM=%.3fs AnsW=%.3fs AnsWb=%.3fs FMAnsW=%.3fs | "
              "speedup vs AnsW=%.2fx vs AnsWb=%.2fx vs FMAnsW=%.2fx\n",
              apx_time.Mean(), answ_time.Mean(), answb_time.Mean(),
              fm_time.Mean(), answ_time.Mean() / std::max(apx_time.Mean(), 1e-9),
              answb_time.Mean() / std::max(apx_time.Mean(), 1e-9),
              fm_time.Mean() / std::max(apx_time.Mean(), 1e-9));
  Shape(apx_time.Mean() <= answ_time.Mean(),
        "ApxWhyM outperforms the exact search on Why-Many questions");
  return env.Finish();
}
