// Table 1 / Example 3.1: the operator cost model on the paper's running
// example — regenerates the worked cost table (unit costs plus normalized
// relative-difference terms) for the Fig 1 operators.

#include <cstdio>

#include "bench_common.h"
#include "chase/eval.h"
#include "gen/product_demo.h"

using namespace wqe;
using namespace wqe::bench;

int main(int argc, char** argv) {
  BenchEnv env(argc, argv);
  std::printf("# table1: atomic operator costs on the Fig 1 product graph\n");
  ProductDemo demo;
  const Graph& g = demo.graph();
  const Schema& schema = g.schema();
  ActiveDomains adom(g);
  const uint32_t diameter = EstimateDiameter(g);
  const AttrId price = schema.LookupAttr("price");
  const AttrId discount = schema.LookupAttr("discount");
  const AttrId display = schema.LookupAttr("display");

  std::printf("# D(G)=%u range(price)=%.0f\n", diameter, adom.Range(price));

  auto show = [&](const char* id, const Op& op) {
    std::printf("table1,%s,%s,cost=%.4f\n", id, op.ToString(schema).c_str(),
                OpCost(op, adom, diameter));
  };

  Op o1;  // AddL(Carrier.discount = 25)
  o1.kind = OpKind::kAddL;
  o1.u = 2;
  o1.lit = {discount, CmpOp::kEq, Value::Num(25)};
  show("o1", o1);

  Op o2;  // RmE((Cellphone, Sensor), 2)
  o2.kind = OpKind::kRmE;
  o2.u = 0;
  o2.v = 3;
  o2.bound = 2;
  show("o2", o2);

  Op o3;  // RxL(price >= 840 -> >= 790)
  o3.kind = OpKind::kRxL;
  o3.u = 0;
  o3.lit = {price, CmpOp::kGe, Value::Num(840)};
  o3.new_lit = {price, CmpOp::kGe, Value::Num(790)};
  show("o3", o3);

  Op o4 = o3;  // RxL(price >= 840 -> >= 750)
  o4.new_lit.constant = Value::Num(750);
  show("o4", o4);

  Op o6;  // RmL(Cellphone.display ...)
  o6.kind = OpKind::kRmL;
  o6.u = 0;
  o6.lit = {display, CmpOp::kGe, Value::Num(6)};
  show("o6", o6);

  // Shape: unit costs for Add/Rm literals; relative terms grow with |c'-c|.
  const bool ok = OpCost(o1, adom, diameter) == 1.0 &&
                  OpCost(o3, adom, diameter) < OpCost(o4, adom, diameter) &&
                  OpCost(o2, adom, diameter) > 1.0 &&
                  OpCost(o4, adom, diameter) <= 2.0;
  std::printf("#SHAPE %s: unit costs + bounded relative terms (c(o) in [1,2])\n",
              ok ? "PASS" : "FAIL");
  return env.Finish();
}
