// Fig 12(c): Why-Empty efficiency — the PTIME AnsWE vs the general AnsW /
// AnsWb on empty-answer questions across all datasets. AnsWE only evaluates
// atomic-condition fragments, so it is several times faster.

#include "bench_common.h"

using namespace wqe;
using namespace wqe::bench;

int main(int argc, char** argv) {
  BenchEnv env(argc, argv);
  Header("fig12c", "Why-Empty efficiency (all datasets)");

  ChaseOptions base = DefaultChase();
  Aggregate answe_time, answ_time, answb_time;
  Aggregate answe_repaired;

  for (const GraphSpec& spec : AllDatasets(env.scale)) {
    Graph g = GenerateGraph(spec);
    WhyFactoryOptions factory = DefaultFactory(env.seed);
    factory.query.num_edges = 2;
    auto cases = MakeWhyEmptyCases(g, std::max<size_t>(env.queries / 2, 2), factory);
    if (cases.empty()) {
      std::printf("fig12c,%s,AnsWE,skipped=no-cases\n", spec.name.c_str());
      continue;
    }
    ExperimentRunner runner(g, std::move(cases), env.threads, env.cache_dir,
                            &BenchObs());

    AlgoSummary se = runner.Run(MakeAnsWE(base));
    PrintRow("fig12c", spec.name, "AnsWE", se);
    answe_time.Add(se.seconds.Mean());
    // Repaired = the rewrite found any matches at all (delta > 0 or
    // closeness > 0 both witness recovered relevant entities).
    answe_repaired.Add(se.delta.Mean() > 0 || se.closeness.Mean() > 0 ? 1 : 0);

    AlgoSummary sw = runner.Run(MakeAnsW(base));
    PrintRow("fig12c", spec.name, "AnsW", sw);
    answ_time.Add(sw.seconds.Mean());

    AlgoSummary sb = runner.Run(MakeAnsWb(base));
    PrintRow("fig12c", spec.name, "AnsWb", sb);
    answb_time.Add(sb.seconds.Mean());
  }

  std::printf("#AGG AnsWE=%.4fs AnsW=%.4fs AnsWb=%.4fs | speedup vs "
              "AnsW=%.2fx vs AnsWb=%.2fx; repaired-rate=%.2f\n",
              answe_time.Mean(), answ_time.Mean(), answb_time.Mean(),
              answ_time.Mean() / std::max(answe_time.Mean(), 1e-9),
              answb_time.Mean() / std::max(answe_time.Mean(), 1e-9),
              answe_repaired.Mean());
  Shape(answe_time.Mean() <= answ_time.Mean(),
        "AnsWE outperforms the general algorithms on Why-Empty questions");
  Shape(answe_repaired.Mean() >= 0.5,
        "AnsWE repairs the majority of empty-answer queries");
  return env.Finish();
}
