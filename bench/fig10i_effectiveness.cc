// Fig 10(i): effectiveness — relative closeness δ (answer Jaccard against
// the ground truth, see §7 Exp-2) per algorithm and dataset, with AnsHeu
// swept over beam sizes 1..5. AnsW achieves the maximum; AnsHeu improves
// with beam width.

#include "bench_common.h"

using namespace wqe;
using namespace wqe::bench;

int main(int argc, char** argv) {
  BenchEnv env(argc, argv);
  Header("fig10i", "relative closeness per dataset / algorithm / beam");

  ChaseOptions base = DefaultChase();
  Aggregate answ_delta, beam1_delta, beam5_delta, fm_delta;
  Aggregate answ_cl, beam5_cl, fm_cl;

  for (const GraphSpec& spec : AllDatasets(env.scale)) {
    Graph g = GenerateGraph(spec);
    auto cases = MakeBenchCases(g, env.queries, DefaultFactory(env.seed));
    ExperimentRunner runner(g, std::move(cases), env.threads, env.cache_dir,
                            &BenchObs());

    AlgoSummary sw = runner.Run(MakeAnsW(base));
    PrintRow("fig10i", spec.name, "AnsW", sw);
    answ_delta.Add(sw.delta.Mean());
    answ_cl.Add(sw.closeness.Mean());

    AlgoSummary sf = runner.Run(MakeFMAnsW(base));
    PrintRow("fig10i", spec.name, "FMAnsW", sf);
    fm_delta.Add(sf.delta.Mean());
    fm_cl.Add(sf.closeness.Mean());

    for (size_t beam : {1u, 2u, 3u, 5u}) {
      AlgoSummary sh = runner.Run(MakeAnsHeu(base, beam));
      PrintRow("fig10i", spec.name, sh.name, sh);
      if (beam == 1) beam1_delta.Add(sh.delta.Mean());
      if (beam == 5) {
        beam5_delta.Add(sh.delta.Mean());
        beam5_cl.Add(sh.closeness.Mean());
      }
    }
  }

  std::printf("#AGG delta AnsW=%.3f AnsHeu(k=1)=%.3f AnsHeu(k=5)=%.3f "
              "FMAnsW=%.3f | closeness AnsW=%.4f AnsHeu(k=5)=%.4f "
              "FMAnsW=%.4f\n",
              answ_delta.Mean(), beam1_delta.Mean(), beam5_delta.Mean(),
              fm_delta.Mean(), answ_cl.Mean(), beam5_cl.Mean(), fm_cl.Mean());
  // Two halves of the paper's claim: (1) within the Q-Chase operator
  // universe the exact search dominates the beam on the measure it
  // optimizes (guaranteed); (2) against the mining baseline, AnsW recovers
  // the ground truth at least as well (δ, the figure's own metric).
  Shape(answ_cl.Mean() + 1e-9 >= beam5_cl.Mean(),
        "AnsW achieves at least AnsHeu's answer closeness");
  Shape(answ_delta.Mean() + 1e-9 >= fm_delta.Mean(),
        "AnsW recovers the ground truth at least as well as FMAnsW");
  Shape(beam5_delta.Mean() + 0.05 >= beam1_delta.Mean(),
        "wider beams do not hurt AnsHeu's closeness");
  return env.Finish();
}
