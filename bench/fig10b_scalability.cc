// Fig 10(b): scalability — time vs |G| on DBpedia-like graphs, |E| swept
// over five sizes. AnsW and AnsHeu scale more gently than AnsWb thanks to
// the star-view optimizations.

#include "bench_common.h"

using namespace wqe;
using namespace wqe::bench;

int main(int argc, char** argv) {
  BenchEnv env(argc, argv);
  Header("fig10b", "scalability vs graph size (dbpedia_like)");

  ChaseOptions base = DefaultChase();
  std::vector<double> sizes = {0.5, 0.75, 1.0, 1.25, 1.5};

  double answ_first = 0, answ_last = 0, answb_first = 0, answb_last = 0;
  for (size_t i = 0; i < sizes.size(); ++i) {
    const double factor = sizes[i] * env.scale;
    GraphSpec spec = DbpediaLike(factor);
    Graph g = GenerateGraph(spec);
    auto cases = MakeBenchCases(g, env.queries, DefaultFactory(env.seed));
    ExperimentRunner runner(g, std::move(cases), env.threads, env.cache_dir,
                            &BenchObs());
    const std::string x = std::to_string(g.num_edges()) + "edges";

    for (AlgoSpec algo : {MakeAnsW(base), MakeAnsHeu(base, 2), MakeAnsWb(base)}) {
      AlgoSummary s = runner.Run(algo);
      PrintRow("fig10b", algo.name, x, s);
      if (algo.name == "AnsW") {
        if (i == 0) answ_first = s.seconds.Mean();
        if (i + 1 == sizes.size()) answ_last = s.seconds.Mean();
      }
      if (algo.name == "AnsWb") {
        if (i == 0) answb_first = s.seconds.Mean();
        if (i + 1 == sizes.size()) answb_last = s.seconds.Mean();
      }
    }
  }

  const double answ_growth = answ_last / std::max(answ_first, 1e-9);
  const double answb_growth = answb_last / std::max(answb_first, 1e-9);
  std::printf("#AGG growth AnsW=%.2fx AnsWb=%.2fx over a 3x edge sweep\n",
              answ_growth, answb_growth);
  Shape(answ_growth <= answb_growth * 1.25,
        "AnsW grows no faster than AnsWb with |G| (view reuse pays off)");
  return env.Finish();
}
