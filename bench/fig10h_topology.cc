// Fig 10(h): time vs query topology (star / chain=tree-ish / cyclic) on
// DBpedia-like. Star queries decompose to a single star view; trees and
// cyclic queries decompose to more stars and join longer.

#include "bench_common.h"

using namespace wqe;
using namespace wqe::bench;

int main(int argc, char** argv) {
  BenchEnv env(argc, argv);
  Header("fig10h", "time vs query topology (dbpedia_like)");

  Graph g = GenerateGraph(DbpediaLike(env.scale));
  ChaseOptions base = DefaultChase();

  double star_time = 0, tree_time = 0, cyclic_time = 0;
  for (QueryShape shape :
       {QueryShape::kStar, QueryShape::kTree, QueryShape::kCyclic}) {
    WhyFactoryOptions factory = DefaultFactory(env.seed);
    factory.query.shape = shape;
    factory.query.num_edges = 3;
    factory.query.max_tries = 600;
    auto cases = MakeBenchCases(g, env.queries, factory);
    if (cases.empty()) {
      std::printf("fig10h,AnsW,%s,skipped=no-cases\n", QueryShapeName(shape));
      continue;
    }
    ExperimentRunner runner(g, std::move(cases), env.threads, env.cache_dir,
                            &BenchObs());
    AlgoSummary s = runner.Run(MakeAnsW(base));
    PrintRow("fig10h", "AnsW", QueryShapeName(shape), s);
    if (shape == QueryShape::kStar) star_time = s.seconds.Mean();
    if (shape == QueryShape::kTree) tree_time = s.seconds.Mean();
    if (shape == QueryShape::kCyclic) cyclic_time = s.seconds.Mean();
    AlgoSummary h = runner.Run(MakeAnsHeu(base, 2));
    PrintRow("fig10h", h.name, QueryShapeName(shape), h);
  }

  std::printf("#AGG star=%.3fs tree=%.3fs cyclic=%.3fs\n", star_time,
              tree_time, cyclic_time);
  Shape(star_time <= std::max(tree_time, cyclic_time) * 1.15,
        "star queries answer fastest (single star view; fewer joins)");
  return env.Finish();
}
