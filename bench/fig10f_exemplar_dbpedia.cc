// Fig 10(f): time vs exemplar size |T| = 5..25 on DBpedia-like. Larger
// exemplars trigger more picky operators for every algorithm except AnsHeu,
// whose fixed beam caps the expansion.

#include "bench_common.h"

using namespace wqe;
using namespace wqe::bench;

int main(int argc, char** argv) {
  BenchEnv env(argc, argv);
  Header("fig10f", "time vs |T| (dbpedia_like)");

  Graph g = GenerateGraph(DbpediaLike(env.scale));
  ChaseOptions base = DefaultChase();

  double answ_small = 0, answ_large = 0, heu_small = 0, heu_large = 0;
  for (size_t tuples : {5u, 10u, 15u, 20u, 25u}) {
    WhyFactoryOptions factory = DefaultFactory(env.seed);
    factory.max_tuples = tuples;
    // Queries with bigger answers so |T| can actually reach the target.
    factory.query.min_answers = 4;
    factory.query.max_answers = 400;
    auto cases = MakeBenchCases(g, env.queries, factory);
    if (cases.empty()) continue;
    ExperimentRunner runner(g, std::move(cases), env.threads, env.cache_dir,
                            &BenchObs());
    for (AlgoSpec algo : {MakeAnsHeu(base, 2), MakeAnsW(base), MakeAnsWb(base)}) {
      AlgoSummary s = runner.Run(algo);
      PrintRow("fig10f", algo.name, "T=" + std::to_string(tuples), s);
      if (algo.name == "AnsW") {
        if (tuples == 5) answ_small = s.seconds.Mean();
        if (tuples == 25) answ_large = s.seconds.Mean();
      } else if (algo.name != "AnsWb") {
        if (tuples == 5) heu_small = s.seconds.Mean();
        if (tuples == 25) heu_large = s.seconds.Mean();
      }
    }
  }

  const double answ_growth = answ_large / std::max(answ_small, 1e-9);
  const double heu_growth = heu_large / std::max(heu_small, 1e-9);
  std::printf("#AGG |T| growth AnsW=%.2fx AnsHeu=%.2fx (5 -> 25 tuples); "
              "absolute at T=25: AnsW=%.3fs AnsHeu=%.3fs\n",
              answ_growth, heu_growth, answ_large, heu_large);
  // Relative growth on millisecond-scale baselines is noisy; the robust form
  // of the paper's claim is that the bounded beam keeps AnsHeu cheaper than
  // the exact search even at the largest |T|.
  Shape(heu_large <= answ_large,
        "AnsHeu stays cheaper than AnsW at the largest |T| (bounded beam)");
  return env.Finish();
}
