// Ablation (beyond the paper, DESIGN.md §4.5): pruned landmark labeling vs
// bounded-BFS distance queries — the "fast distance index [2]" all
// algorithms consult. google-benchmark microbenchmark.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "gen/datasets.h"
#include "gen/synthetic.h"
#include "graph/distance_index.h"

namespace wqe {
namespace {

const Graph& SharedGraph() {
  static Graph* g = new Graph(GenerateGraph(ImdbLike(0.25)));
  return *g;
}

void BM_DistancePll(benchmark::State& state) {
  const Graph& g = SharedGraph();
  DistanceIndex index(g);
  Rng rng(7);
  const uint32_t cap = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    const NodeId u = static_cast<NodeId>(rng.Index(g.num_nodes()));
    const NodeId v = static_cast<NodeId>(rng.Index(g.num_nodes()));
    benchmark::DoNotOptimize(index.Distance(u, v, cap));
  }
  state.SetLabel(index.indexed() ? "pll" : "fallback");
}
BENCHMARK(BM_DistancePll)->Arg(2)->Arg(3)->Arg(4);

void BM_DistanceBfs(benchmark::State& state) {
  const Graph& g = SharedGraph();
  DistanceIndex::Options opts;
  opts.use_pll = false;
  DistanceIndex index(g, opts);
  Rng rng(7);
  const uint32_t cap = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    const NodeId u = static_cast<NodeId>(rng.Index(g.num_nodes()));
    const NodeId v = static_cast<NodeId>(rng.Index(g.num_nodes()));
    benchmark::DoNotOptimize(index.Distance(u, v, cap));
  }
}
BENCHMARK(BM_DistanceBfs)->Arg(2)->Arg(3)->Arg(4);

void BM_PllConstruction(benchmark::State& state) {
  const double scale = static_cast<double>(state.range(0)) / 100.0;
  Graph g = GenerateGraph(ImdbLike(scale));
  for (auto _ : state) {
    DistanceIndex index(g);
    benchmark::DoNotOptimize(index.LabelEntries());
  }
  state.SetComplexityN(static_cast<int64_t>(g.num_edges()));
}
BENCHMARK(BM_PllConstruction)->Arg(5)->Arg(10)->Arg(20)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wqe

BENCHMARK_MAIN();
