#ifndef WQE_BENCH_BENCH_COMMON_H_
#define WQE_BENCH_BENCH_COMMON_H_

// Shared scaffolding for the figure-reproduction binaries. Each binary
// regenerates one figure of the paper's evaluation (§7 / Appendix C),
// printing one CSV-ish row per (series, x) pair via PrintRow plus a final
// "#SHAPE" line asserting the qualitative relationship the paper reports.
//
// Environment knobs (defaults keep the full suite to minutes on a laptop):
//   WQE_SCALE      graph scale factor applied to the dataset presets (0.25)
//   WQE_QUERIES    why-questions per configuration (8)
//   WQE_SEED       workload seed (1)
//   WQE_THREADS    workers for the parallel evaluation layer ("auto" =
//                  hardware concurrency, integers in [1, kMaxThreads]);
//                  results are byte-identical across settings
//   WQE_CACHE_DIR  persistent artifact-store directory; set it to make runs
//                  warm-start from on-disk index/star-view snapshots (empty =
//                  cold builds, the default)
//
// Observability flags (accepted by every bench main that constructs
// BenchEnv from argc/argv):
//   --threads=N        same as WQE_THREADS=N
//   --cache-dir=DIR    same as WQE_CACHE_DIR=DIR
//   --trace-out=FILE   Chrome trace_event JSON of the whole run
//   --metrics-out=FILE phase breakdown + counter/gauge/histogram dump
//                      (includes store.hits/misses/rejected/saves when a
//                      cache dir is active)
//   --sample-resources background RSS / queue-depth / cache-occupancy
//                      sampling into the same scope (see obs::ResourceSampler;
//                      off by default, shows up in --metrics-out)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "gen/datasets.h"
#include "gen/synthetic.h"
#include "obs/observability.h"
#include "obs/resource_sampler.h"
#include "workload/suite.h"

namespace wqe::bench {

inline double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::atof(v);
}

inline size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : static_cast<size_t>(std::atoll(v));
}

inline std::string EnvStr(const char* name) {
  const char* v = std::getenv(name);
  return v == nullptr ? std::string() : std::string(v);
}

/// Validated thread-count parsing for WQE_THREADS / --threads. A malformed
/// value aborts the bench with the Status message instead of silently running
/// single-threaded (atoll would turn "eight" into 0-meaning-auto).
inline size_t ParseThreadsOrDie(const char* what, const char* text) {
  Result<size_t> parsed = ParseThreadCount(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s: %s\n", what,
                 parsed.status().ToString().c_str());
    std::exit(2);
  }
  return parsed.value();
}

inline size_t EnvThreads(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : ParseThreadsOrDie(name, v);
}

/// The process-wide observation scope every bench reports into. DefaultChase
/// wires it through ChaseOptions::observability so solver counters land here,
/// and BenchEnv installs its tracer as the thread's current tracer so
/// WQE_SPAN phases (index builds, match, ops) aggregate across the whole run.
inline obs::Observability& BenchObs() {
  static obs::Observability o;
  return o;
}

struct BenchEnv {
  double scale = EnvDouble("WQE_SCALE", 0.25);
  size_t queries = EnvSize("WQE_QUERIES", 8);
  uint64_t seed = EnvSize("WQE_SEED", 1);
  size_t threads = EnvThreads("WQE_THREADS", 1);
  std::string cache_dir = EnvStr("WQE_CACHE_DIR");
  std::string trace_out;
  std::string metrics_out;

  BenchEnv() : scope_(&BenchObs().tracer) {}

  /// Parses observability flags. Unknown flags are reported but ignored so
  /// the figure binaries stay usable from ad-hoc scripts.
  BenchEnv(int argc, char** argv) : BenchEnv() {
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (const char* v = FlagValue(arg, "--trace-out=")) {
        trace_out = v;
      } else if (const char* v = FlagValue(arg, "--metrics-out=")) {
        metrics_out = v;
      } else if (const char* v = FlagValue(arg, "--threads=")) {
        threads = ParseThreadsOrDie("--threads", v);
        setenv("WQE_THREADS", v, /*overwrite=*/1);  // DefaultChase reads env
      } else if (const char* v = FlagValue(arg, "--cache-dir=")) {
        cache_dir = v;
      } else if (std::strcmp(arg, "--sample-resources") == 0) {
        sampler_ = std::make_unique<obs::ResourceSampler>(&BenchObs());
      } else {
        std::fprintf(stderr, "warning: ignoring unknown flag %s\n", arg);
      }
    }
    BenchObs().tracer.set_capture_events(!trace_out.empty());
  }

  /// Writes the requested JSON artifacts. Returns the process exit code
  /// (non-zero if a file could not be written), so bench mains end with
  /// `return env.Finish();`.
  int Finish() {
    int rc = 0;
    if (sampler_ != nullptr) sampler_->Stop();  // final sample before export
    if (!metrics_out.empty() &&
        !WriteJson(metrics_out, obs::ExportMetricsJson(
                                    BenchObs(), timer_.ElapsedSeconds()))) {
      rc = 1;
    }
    if (!trace_out.empty() &&
        !WriteJson(trace_out, BenchObs().tracer.ChromeTraceJson())) {
      rc = 1;
    }
    return rc;
  }

 private:
  static const char* FlagValue(const char* arg, const char* prefix) {
    const size_t n = std::strlen(prefix);
    return std::strncmp(arg, prefix, n) == 0 ? arg + n : nullptr;
  }

  static bool WriteJson(const std::string& path, const std::string& content) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
      return false;
    }
    const bool ok =
        std::fwrite(content.data(), 1, content.size(), f) == content.size();
    std::fclose(f);
    if (!ok) std::fprintf(stderr, "error: short write to %s\n", path.c_str());
    return ok;
  }

  Timer timer_;
  obs::TracerScope scope_;
  std::unique_ptr<obs::ResourceSampler> sampler_;
};

/// Default §7 protocol options.
inline WhyFactoryOptions DefaultFactory(uint64_t seed) {
  WhyFactoryOptions opts;
  opts.query.num_edges = 3;
  opts.query.max_literals = 3;
  opts.disturb.num_ops = 3;
  opts.max_tuples = 10;
  opts.seed = seed;
  return opts;
}

inline ChaseOptions DefaultChase() {
  ChaseOptions opts;
  opts.budget = 3;
  opts.beam = 2;
  opts.max_steps = 4000;
  opts.time_limit_seconds = 5.0;  // per-question safety valve (re-armed)
  opts.num_threads = EnvThreads("WQE_THREADS", 1);
  opts.observability = &BenchObs();
  return opts;
}

/// Prints the figure header.
inline void Header(const char* fig, const char* what) {
  std::printf("# %s: %s\n", fig, what);
  std::printf("# columns: bench,series,x,metrics...\n");
  std::fflush(stdout);
}

/// Prints the qualitative-shape assertion line: PASS/FAIL plus description.
inline void Shape(bool ok, const std::string& description) {
  std::printf("#SHAPE %s: %s\n", ok ? "PASS" : "FAIL", description.c_str());
  std::fflush(stdout);
}

}  // namespace wqe::bench

#endif  // WQE_BENCH_BENCH_COMMON_H_
