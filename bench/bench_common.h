#ifndef WQE_BENCH_BENCH_COMMON_H_
#define WQE_BENCH_BENCH_COMMON_H_

// Shared scaffolding for the figure-reproduction binaries. Each binary
// regenerates one figure of the paper's evaluation (§7 / Appendix C),
// printing one CSV-ish row per (series, x) pair via PrintRow plus a final
// "#SHAPE" line asserting the qualitative relationship the paper reports.
//
// Environment knobs (defaults keep the full suite to minutes on a laptop):
//   WQE_SCALE    graph scale factor applied to the dataset presets (0.25)
//   WQE_QUERIES  why-questions per configuration (8)
//   WQE_SEED     workload seed (1)
//   WQE_THREADS  workers for the parallel evaluation layer (1 = serial,
//                0 = hardware concurrency); results are byte-identical
//                across settings

#include <cstdio>
#include <cstdlib>
#include <string>

#include "gen/datasets.h"
#include "gen/synthetic.h"
#include "workload/suite.h"

namespace wqe::bench {

inline double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::atof(v);
}

inline size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : static_cast<size_t>(std::atoll(v));
}

struct BenchEnv {
  double scale = EnvDouble("WQE_SCALE", 0.25);
  size_t queries = EnvSize("WQE_QUERIES", 8);
  uint64_t seed = EnvSize("WQE_SEED", 1);
  size_t threads = EnvSize("WQE_THREADS", 1);
};

/// Default §7 protocol options.
inline WhyFactoryOptions DefaultFactory(uint64_t seed) {
  WhyFactoryOptions opts;
  opts.query.num_edges = 3;
  opts.query.max_literals = 3;
  opts.disturb.num_ops = 3;
  opts.max_tuples = 10;
  opts.seed = seed;
  return opts;
}

inline ChaseOptions DefaultChase() {
  ChaseOptions opts;
  opts.budget = 3;
  opts.beam = 2;
  opts.max_steps = 4000;
  opts.time_limit_seconds = 5.0;  // per-question safety valve (re-armed)
  opts.num_threads = EnvSize("WQE_THREADS", 1);
  return opts;
}

/// Prints the figure header.
inline void Header(const char* fig, const char* what) {
  std::printf("# %s: %s\n", fig, what);
  std::printf("# columns: bench,series,x,metrics...\n");
  std::fflush(stdout);
}

/// Prints the qualitative-shape assertion line: PASS/FAIL plus description.
inline void Shape(bool ok, const std::string& description) {
  std::printf("#SHAPE %s: %s\n", ok ? "PASS" : "FAIL", description.c_str());
  std::fflush(stdout);
}

}  // namespace wqe::bench

#endif  // WQE_BENCH_BENCH_COMMON_H_
