// Ablation (beyond the paper, DESIGN.md §4.6): TA-style closeness-ordered
// candidate verification vs natural order in the star matcher, and cached vs
// uncached star-view evaluation. google-benchmark microbenchmark.

#include <benchmark/benchmark.h>

#include "gen/datasets.h"
#include "gen/synthetic.h"
#include "match/star_matcher.h"
#include "workload/query_gen.h"

namespace wqe {
namespace {

struct Setup {
  Graph g;
  DistanceIndex dist;
  PatternQuery query;

  Setup() : g(GenerateGraph(ImdbLike(0.1))), dist(g) {
    Matcher matcher(g, &dist);
    QueryGenOptions opts;
    opts.num_edges = 2;
    opts.seed = 3;
    auto q = GenerateGroundTruthQuery(g, matcher, opts);
    query = q.value_or(PatternQuery());
    if (!q.has_value()) {
      // Fallback: single-node query on the most common label.
      query = PatternQuery();
      query.AddNode(g.schema().LookupLabel("Movie"));
      query.SetFocus(0);
    }
  }
};

Setup& SharedSetup() {
  static Setup* s = new Setup();
  return *s;
}

void BM_EvaluateUncached(benchmark::State& state) {
  Setup& s = SharedSetup();
  StarMatcher sm(s.g, &s.dist, nullptr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sm.Evaluate(s.query).matches.size());
  }
}
BENCHMARK(BM_EvaluateUncached)->Unit(benchmark::kMicrosecond);

void BM_EvaluateCached(benchmark::State& state) {
  Setup& s = SharedSetup();
  ViewCache cache;
  StarMatcher sm(s.g, &s.dist, &cache);
  sm.Evaluate(s.query);  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(sm.Evaluate(s.query).matches.size());
  }
}
BENCHMARK(BM_EvaluateCached)->Unit(benchmark::kMicrosecond);

void BM_EvaluatePriorityOrdered(benchmark::State& state) {
  Setup& s = SharedSetup();
  ViewCache cache;
  StarMatcher sm(s.g, &s.dist, &cache);
  std::function<double(NodeId)> priority = [](NodeId v) {
    return static_cast<double>(v % 97);  // stand-in closeness scores
  };
  sm.Evaluate(s.query, &priority);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sm.Evaluate(s.query, &priority).matches.size());
  }
}
BENCHMARK(BM_EvaluatePriorityOrdered)->Unit(benchmark::kMicrosecond);

void BM_DirectMatcher(benchmark::State& state) {
  Setup& s = SharedSetup();
  Matcher matcher(s.g, &s.dist);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.Answer(s.query).size());
  }
}
BENCHMARK(BM_DirectMatcher)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace wqe

BENCHMARK_MAIN();
