// Fig 10(g): time vs exemplar size |T| = 5..25 on IMDB-like (companion to
// Fig 10(f)).

#include "bench_common.h"

using namespace wqe;
using namespace wqe::bench;

int main(int argc, char** argv) {
  BenchEnv env(argc, argv);
  Header("fig10g", "time vs |T| (imdb_like)");

  Graph g = GenerateGraph(ImdbLike(env.scale));
  ChaseOptions base = DefaultChase();

  double answ_small = 0, answ_large = 0;
  for (size_t tuples : {5u, 10u, 15u, 20u, 25u}) {
    WhyFactoryOptions factory = DefaultFactory(env.seed);
    factory.max_tuples = tuples;
    factory.query.min_answers = 4;
    factory.query.max_answers = 400;
    auto cases = MakeBenchCases(g, env.queries, factory);
    if (cases.empty()) continue;
    ExperimentRunner runner(g, std::move(cases), env.threads, env.cache_dir,
                            &BenchObs());
    for (AlgoSpec algo : {MakeAnsHeu(base, 2), MakeAnsW(base)}) {
      AlgoSummary s = runner.Run(algo);
      PrintRow("fig10g", algo.name, "T=" + std::to_string(tuples), s);
      if (algo.name == "AnsW") {
        if (tuples == 5) answ_small = s.seconds.Mean();
        if (tuples == 25) answ_large = s.seconds.Mean();
      }
    }
  }
  Shape(answ_large >= answ_small * 0.8,
        "AnsW needs more time with more exemplar tuples");
  return env.Finish();
}
