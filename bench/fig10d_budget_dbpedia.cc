// Fig 10(d): time vs cost budget B = 1..5 on DBpedia-like. Larger budgets
// admit deeper chase sequences; AnsHeu (no backtracking) is least sensitive.

#include "bench_common.h"

using namespace wqe;
using namespace wqe::bench;

int main(int argc, char** argv) {
  BenchEnv env(argc, argv);
  Header("fig10d", "time vs budget B (dbpedia_like)");

  Graph g = GenerateGraph(DbpediaLike(env.scale));
  auto cases = MakeBenchCases(g, env.queries, DefaultFactory(env.seed));
  ExperimentRunner runner(g, std::move(cases), env.threads, env.cache_dir,
                            &BenchObs());

  Aggregate heu_times, answ_times;
  double answ_b1 = 0, answ_b5 = 0, heu_b1 = 0, heu_b5 = 0;
  for (int budget = 1; budget <= 5; ++budget) {
    ChaseOptions base = DefaultChase();
    base.budget = budget;
    for (AlgoSpec algo : {MakeAnsHeu(base, 2), MakeAnsW(base), MakeAnsWb(base)}) {
      AlgoSummary s = runner.Run(algo);
      PrintRow("fig10d", algo.name, "B=" + std::to_string(budget), s);
      if (algo.name == "AnsW") {
        answ_times.Add(s.seconds.Mean());
        if (budget == 1) answ_b1 = s.seconds.Mean();
        if (budget == 5) answ_b5 = s.seconds.Mean();
      } else if (algo.name != "AnsWb") {
        heu_times.Add(s.seconds.Mean());
        if (budget == 1) heu_b1 = s.seconds.Mean();
        if (budget == 5) heu_b5 = s.seconds.Mean();
      }
    }
  }

  const double answ_growth = answ_b5 / std::max(answ_b1, 1e-9);
  const double heu_growth = heu_b5 / std::max(heu_b1, 1e-9);
  std::printf("#AGG budget growth AnsW=%.2fx AnsHeu=%.2fx (B=1 -> B=5)\n",
              answ_growth, heu_growth);
  Shape(answ_b5 >= answ_b1,
        "AnsW consumes more time with larger budgets (deeper chase)");
  Shape(heu_growth <= answ_growth * 1.2,
        "AnsHeu is the least budget-sensitive (no backtracking)");
  return env.Finish();
}
