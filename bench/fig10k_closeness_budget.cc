// Fig 10(k): relative closeness vs budget B = 1..5 on DBpedia-like, with 5
// operators injected into each ground truth: δ improves with budget and the
// exact algorithm peaks once the budget matches the injected damage (B=5).

#include "bench_common.h"

using namespace wqe;
using namespace wqe::bench;

int main(int argc, char** argv) {
  BenchEnv env(argc, argv);
  Header("fig10k", "relative closeness vs budget B (dbpedia_like)");

  Graph g = GenerateGraph(DbpediaLike(env.scale));
  WhyFactoryOptions factory = DefaultFactory(env.seed);
  factory.disturb.num_ops = 5;  // the paper injects up to five
  auto cases = MakeBenchCases(g, env.queries, factory);
  ExperimentRunner runner(g, std::move(cases), env.threads, env.cache_dir,
                            &BenchObs());

  double answ_b1 = 0, answ_b5 = 0;
  for (int budget = 1; budget <= 5; ++budget) {
    ChaseOptions base = DefaultChase();
    base.budget = budget;
    for (AlgoSpec algo : {MakeAnsW(base), MakeAnsHeu(base, 2)}) {
      AlgoSummary s = runner.Run(algo);
      PrintRow("fig10k", algo.name, "B=" + std::to_string(budget), s);
      if (algo.name == "AnsW") {
        if (budget == 1) answ_b1 = s.delta.Mean();
        if (budget == 5) answ_b5 = s.delta.Mean();
      }
    }
  }

  std::printf("#AGG AnsW delta B=1: %.3f -> B=5: %.3f\n", answ_b1, answ_b5);
  Shape(answ_b5 + 1e-9 >= answ_b1,
        "larger budgets recover the ground truth better");
  return env.Finish();
}
