// Ablation: the compiled match pipeline (DESIGN.md "Match pipeline"). Runs
// AnsW with ChaseOptions::use_match_pipeline off (interpreted per-literal
// candidate probes) and on (FilterPlans compiled once per node signature,
// merged-walk probes, selection-vector stages), asserting that the suggested
// rewrites are *identical* — same answer sets, same closeness — and reporting
// the wall-clock speedup plus the pipeline's stage funnel
// (match.stage.seeded -> .filtered -> .verified) and plan-memo traffic.
//
// The two workloads target the regimes the pipeline exists for:
//   imdb_sparse  — few labels, so label buckets are huge and the predicate
//                  stage does nearly all the filtering work;
//   dbpedia_lits — literal-heavy queries (max_literals above the §7 default),
//                  where one merged tuple walk replaces k per-literal probes.

#include "bench_common.h"
#include "common/timer.h"
#include "match/candidates.h"
#include "match/filter_plan.h"

using namespace wqe;
using namespace wqe::bench;

namespace {

struct ConfigResult {
  double seconds = 0;
  uint64_t evaluations = 0;
  uint64_t seeded = 0;
  uint64_t filtered = 0;
  uint64_t verified = 0;
  uint64_t plan_compiles = 0;
  uint64_t plan_hits = 0;
  std::vector<std::vector<NodeId>> matches;
  std::vector<double> closeness;
};

}  // namespace

int main(int argc, char** argv) {
  BenchEnv env(argc, argv);
  Header("abl_match_pipeline",
         "compiled filter plans + selection-vector stages: equivalence and "
         "speedup");

  struct PipelineConfig {
    const char* name;
    GraphSpec spec;
    size_t max_literals;
  };
  const PipelineConfig configs[] = {
      {"imdb_sparse", ImdbLike(env.scale), 3},
      {"dbpedia_lits", DbpediaLike(env.scale), 5},
  };

  bool identical = true;
  int wins = 0;
  for (const PipelineConfig& pc : configs) {
    Graph g = GenerateGraph(pc.spec);
    WhyFactoryOptions factory = DefaultFactory(env.seed);
    factory.query.max_literals = pc.max_literals;
    auto cases = MakeBenchCases(g, env.queries, factory);
    GraphIndexes indexes(g, env.threads);

    // Each arm is timed over several repeats and scored by its fastest one;
    // the arms are interleaved within each repeat so they sample the same
    // scheduler/frequency conditions (the arms differ by percents — far
    // inside the single-shot jitter of a busy box, and block-per-arm timing
    // would let a drift between blocks masquerade as a speedup). Answers and
    // funnel counters come from the first repeat — repeats are
    // deterministic, so any repeat would do.
    constexpr int kRepeats = 5;
    auto run_once = [&](bool use_pipeline, bool record, ConfigResult& r) {
      ChaseOptions opts = DefaultChase();
      // Both arms must explore the same tree to the same depth: a timeout
      // truncating one arm early would void the equivalence comparison.
      opts.time_limit_seconds = 120.0;
      opts.use_match_pipeline = use_pipeline;
      obs::MetricsRegistry& m = BenchObs().metrics;
      const uint64_t seeded0 = m.counter("match.stage.seeded").Value();
      const uint64_t filtered0 = m.counter("match.stage.filtered").Value();
      const uint64_t verified0 = m.counter("match.stage.verified").Value();
      const uint64_t compiles0 = m.counter("match.plan.compiles").Value();
      const uint64_t hits0 = m.counter("match.plan.hits").Value();
      std::vector<std::vector<NodeId>> matches;
      std::vector<double> closeness;
      uint64_t evaluations = 0;
      Timer timer;
      for (const BenchCase& c : cases) {
        ChaseContext ctx(g, &indexes, c.question, opts);
        const ChaseResult res =
            ExecuteWithContext(ctx, Algorithm::kAnsW).result;
        evaluations += res.stats.evaluations;
        matches.push_back(res.best().matches);
        closeness.push_back(res.best().closeness);
      }
      const double seconds = timer.ElapsedSeconds();
      if (record) {
        r.seconds = seconds;
        r.evaluations = evaluations;
        r.matches = std::move(matches);
        r.closeness = std::move(closeness);
        r.seeded = m.counter("match.stage.seeded").Value() - seeded0;
        r.filtered = m.counter("match.stage.filtered").Value() - filtered0;
        r.verified = m.counter("match.stage.verified").Value() - verified0;
        r.plan_compiles = m.counter("match.plan.compiles").Value() - compiles0;
        r.plan_hits = m.counter("match.plan.hits").Value() - hits0;
      } else {
        r.seconds = std::min(r.seconds, seconds);
      }
    };

    ConfigResult interp, piped;
    for (int rep = 0; rep < kRepeats; ++rep) {
      run_once(false, rep == 0, interp);
      run_once(true, rep == 0, piped);
    }
    identical = identical && interp.matches == piped.matches &&
                interp.closeness == piped.closeness;
    const double speedup =
        piped.seconds > 0 ? interp.seconds / piped.seconds : 0;
    if (speedup >= 1.05) ++wins;
    std::printf(
        "abl_match_pipeline,%s,pipeline=off,seconds=%.4f,evaluations=%llu\n",
        pc.name, interp.seconds,
        static_cast<unsigned long long>(interp.evaluations));
    std::printf(
        "abl_match_pipeline,%s,pipeline=on,seconds=%.4f,evaluations=%llu,"
        "seeded=%llu,filtered=%llu,verified=%llu,plan_compiles=%llu,"
        "plan_hits=%llu,speedup=%.2f\n",
        pc.name, piped.seconds,
        static_cast<unsigned long long>(piped.evaluations),
        static_cast<unsigned long long>(piped.seeded),
        static_cast<unsigned long long>(piped.filtered),
        static_cast<unsigned long long>(piped.verified),
        static_cast<unsigned long long>(piped.plan_compiles),
        static_cast<unsigned long long>(piped.plan_hits), speedup);
    // Only the first two stages are monotone cumulatively: seeding and
    // filtering run per table *build*, while verification runs per
    // *evaluation* — a view-cache hit re-verifies candidates without
    // re-seeding them, so `verified` may exceed `filtered` on cache-friendly
    // workloads.
    Shape(piped.seeded >= piped.filtered,
          std::string(pc.name) +
              ": predicate stage only shrinks the seed (seeded >= filtered)");
  }

  Shape(identical,
        "answers and closeness are identical with the match pipeline on/off");
  if (wins == 0) {
    // Informational, not a gate: end-to-end AnsW time is dominated by BFS
    // walks and chase bookkeeping shared by both arms, so the whole-solve
    // speedup can sink below jitter on a busy box. The kernel stage below is
    // the pipeline's own differential and carries the speedup assertion.
    std::printf("abl_match_pipeline,note,end-to-end speedup below 1.05 on "
                "both workloads this run\n");
  }

  // --- Probe-kernel differential: the candidate stage in isolation. For
  // every query node of a literal-heavy workload, produce the candidate set
  // the interpreted way (per-node IsCandidate: one attribute lookup per
  // literal) and the compiled way (label-bucket seed + one merged tuple walk
  // per node). This is exactly the code the pipeline replaced, so the
  // speedup here is its differential with no chase machinery diluting it.
  {
    Graph g = GenerateGraph(DbpediaLike(env.scale));
    WhyFactoryOptions factory = DefaultFactory(env.seed + 1);
    factory.query.max_literals = 5;
    auto cases = MakeBenchCases(g, env.queries, factory);
    double interp_s = 0, piped_s = 0;
    size_t interp_out = 0, piped_out = 0;
    bool kernel_identical = true;
    constexpr int kKernelRepeats = 7;
    for (int rep = 0; rep < kKernelRepeats; ++rep) {
      size_t survivors = 0;
      std::vector<std::vector<NodeId>> interp_sets;
      Timer ti;
      for (const BenchCase& c : cases) {
        const PatternQuery& q = c.question.query;
        for (QNodeId u = 0; u < q.num_nodes(); ++u) {
          auto cands = ComputeCandidates(g, q, u);
          survivors += cands.size();
          if (rep == 0) interp_sets.push_back(std::move(cands));
        }
      }
      const double ts = ti.ElapsedSeconds();
      interp_s = rep == 0 ? ts : std::min(interp_s, ts);
      interp_out = survivors;

      survivors = 0;
      std::vector<std::vector<NodeId>> piped_sets;
      Timer tp;
      for (const BenchCase& c : cases) {
        const PatternQuery& q = c.question.query;
        const auto plans = match::QueryFilterPlans::Compile(q);
        for (QNodeId u = 0; u < q.num_nodes(); ++u) {
          auto cands = match::ComputeCandidatesCompiled(g, plans.at(u));
          survivors += cands.size();
          if (rep == 0) piped_sets.push_back(std::move(cands));
        }
      }
      const double tps = tp.ElapsedSeconds();
      piped_s = rep == 0 ? tps : std::min(piped_s, tps);
      piped_out = survivors;
      kernel_identical = kernel_identical && interp_out == piped_out &&
                         (rep != 0 || interp_sets == piped_sets);
    }
    const double kernel_speedup = piped_s > 0 ? interp_s / piped_s : 0;
    std::printf(
        "abl_match_pipeline,kernel,candidate_stage,interp_seconds=%.4f,"
        "piped_seconds=%.4f,survivors=%llu,speedup=%.2f\n",
        interp_s, piped_s, static_cast<unsigned long long>(piped_out),
        kernel_speedup);
    identical = identical && kernel_identical;
    Shape(kernel_identical,
          "compiled and interpreted candidate stages agree on every node");
    Shape(kernel_speedup >= 1.05,
          "the compiled candidate stage is >=1.05x faster than interpreted");
  }

  return identical ? env.Finish() : 1;
}
