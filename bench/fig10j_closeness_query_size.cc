// Fig 10(j): relative closeness vs |E_Q| = 1..6 on DBpedia-like. Larger
// queries are harder to repair under a fixed budget, so δ decreases; AnsW
// stays above AnsHeu throughout.

#include "bench_common.h"

using namespace wqe;
using namespace wqe::bench;

int main(int argc, char** argv) {
  BenchEnv env(argc, argv);
  Header("fig10j", "relative closeness vs |E_Q| (dbpedia_like)");

  Graph g = GenerateGraph(DbpediaLike(env.scale));
  ChaseOptions base = DefaultChase();

  Aggregate answ_small, answ_large, heu_all, answ_all;
  for (size_t edges = 1; edges <= 6; ++edges) {
    WhyFactoryOptions factory = DefaultFactory(env.seed);
    factory.query.num_edges = edges;
    auto cases = MakeBenchCases(g, env.queries, factory);
    if (cases.empty()) continue;
    ExperimentRunner runner(g, std::move(cases), env.threads, env.cache_dir,
                            &BenchObs());

    AlgoSummary sw = runner.Run(MakeAnsW(base));
    PrintRow("fig10j", "AnsW", std::to_string(edges), sw);
    answ_all.Add(sw.delta.Mean());
    (edges <= 2 ? answ_small : answ_large).Add(sw.delta.Mean());

    AlgoSummary sh = runner.Run(MakeAnsHeu(base, 1));
    PrintRow("fig10j", sh.name, std::to_string(edges), sh);
    heu_all.Add(sh.delta.Mean());
  }

  std::printf("#AGG delta AnsW small|E_Q|=%.3f large=%.3f; overall AnsW=%.3f "
              "AnsHeu(k=1)=%.3f\n",
              answ_small.Mean(), answ_large.Mean(), answ_all.Mean(),
              heu_all.Mean());
  Shape(answ_small.Mean() + 0.05 >= answ_large.Mean(),
        "smaller queries recover the ground truth better");
  Shape(answ_all.Mean() + 1e-9 >= heu_all.Mean(),
        "AnsW dominates AnsHeu(k=1) across query sizes");
  return env.Finish();
}
