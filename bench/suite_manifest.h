#ifndef WQE_BENCH_SUITE_MANIFEST_H_
#define WQE_BENCH_SUITE_MANIFEST_H_

// The curated quick-mode suite the benchmark regression gate runs: one
// representative bench per figure family (Why efficiency, heuristic quality,
// Why-many, Why-empty), each a scaled-down fig10/fig12 configuration that
// finishes in well under a second so the gate can afford several repeats.
//
// The manifest is a header (not a library .cc) so `tools/bench_gate.cc` and
// the gate tests share the exact same bench definitions — a drifted copy in
// either place would silently gate against a different workload than the
// committed baseline measured.

#include <algorithm>
#include <filesystem>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "chase/eval.h"
#include "common/timer.h"
#include "gen/datasets.h"
#include "gen/synthetic.h"
#include "obs/observability.h"
#include "serve/server.h"
#include "store/artifact_store.h"
#include "store/serde.h"
#include "workload/suite.h"

namespace wqe::gate {

/// Knobs for one gate run. Quick-mode defaults (scale 0.05, 3 queries) keep
/// the four-bench suite to a few seconds per repeat on one core; the
/// committed baseline was produced with exactly these values, so overriding
/// them only makes sense together with `--write-baseline`.
struct GateBenchConfig {
  double scale = 0.05;
  size_t queries = 3;
  uint64_t seed = 1;
  size_t threads = 1;
  std::string cache_dir;
};

/// A prepared quick bench: graph + cases + runner built once, so repeats
/// measure only the solve work (the §7 protocol prebuilds indexes the same
/// way). Each bench owns a private Observability scope, so its
/// `solve.latency_ns` histogram and cache/store counters are not mixed with
/// the other suite entries'. Heap-held members keep the runner's references
/// stable across vector moves.
struct QuickBench {
  std::string name;
  std::unique_ptr<obs::Observability> obs;
  std::unique_ptr<Graph> graph;
  std::unique_ptr<ExperimentRunner> runner;
  AlgoSpec algo;
  /// Custom measurement body. When set, RunOnce() invokes it instead of the
  /// ExperimentRunner — the serve bench drives a serve::Server rather than a
  /// sequential runner, but reports through the same AlgoSummary columns.
  std::function<AlgoSummary()> run;

  AlgoSummary RunOnce() const { return run ? run() : runner->Run(algo); }
};

/// Gate mirror of bench_common.h's DefaultChase, minus the environment
/// reads: the gate's workload must not vary with WQE_* in the caller's
/// shell, or the comparison against the committed baseline is meaningless.
inline ChaseOptions GateChase(const GateBenchConfig& cfg,
                              obs::Observability* obs) {
  ChaseOptions opts;
  opts.budget = 3;
  opts.beam = 2;
  opts.max_steps = 4000;
  opts.time_limit_seconds = 5.0;
  opts.num_threads = cfg.threads;
  opts.observability = obs;
  return opts;
}

inline WhyFactoryOptions GateFactory(uint64_t seed) {
  WhyFactoryOptions opts;
  opts.query.num_edges = 3;
  opts.query.max_literals = 3;
  opts.disturb.num_ops = 3;
  opts.max_tuples = 10;
  opts.seed = seed;
  return opts;
}

/// Builds the quick suite. Names are stable identifiers — the committed
/// baseline keys on them, so renaming a bench is a re-baselining event.
inline std::vector<QuickBench> BuildQuickSuite(const GateBenchConfig& cfg) {
  std::vector<QuickBench> suite;

  using CaseMaker = std::vector<BenchCase> (*)(const Graph&, size_t,
                                               const WhyFactoryOptions&);
  auto add = [&](std::string name, GraphSpec spec, CaseMaker make_cases,
                 size_t n, const WhyFactoryOptions& factory,
                 AlgoSpec (*make_algo)(const ChaseOptions&)) {
    QuickBench b;
    b.name = std::move(name);
    b.obs = std::make_unique<obs::Observability>();
    b.graph = std::make_unique<Graph>(GenerateGraph(spec));
    b.runner = std::make_unique<ExperimentRunner>(
        *b.graph, make_cases(*b.graph, n, factory), cfg.threads, cfg.cache_dir,
        b.obs.get());
    b.algo = make_algo(GateChase(cfg, b.obs.get()));
    suite.push_back(std::move(b));
  };

  // fig10a family: exact Why answering on the IMDB-shaped graph.
  add("fig10a_quick", ImdbLike(cfg.scale), &MakeBenchCases, cfg.queries,
      GateFactory(cfg.seed), &MakeAnsW);

  // fig10c family: the beam heuristic on the heterogeneous DBpedia shape.
  add("fig10c_quick", DbpediaLike(cfg.scale), &MakeBenchCases, cfg.queries,
      GateFactory(cfg.seed),
      +[](const ChaseOptions& base) { return MakeAnsHeu(base, /*beam=*/2); });

  // fig10d family: deep chase — budget above the §7 default, the regime the
  // incremental evaluation path (DESIGN.md "Incremental evaluation") exists
  // for; gates the delta path's per-evaluation cost on refine-heavy repairs.
  {
    WhyFactoryOptions factory = GateFactory(cfg.seed);
    factory.disturb.refine_prob = 0.15;
    add("fig10d_quick", DbpediaLike(cfg.scale), &MakeBenchCases, cfg.queries,
        factory, +[](const ChaseOptions& base) {
          ChaseOptions deep = base;
          deep.budget = 5;
          return MakeAnsW(deep);
        });
  }

  // match_pipeline family: literal-heavy queries on the label-sparse IMDB
  // shape — the regime the compiled match pipeline (DESIGN.md "Match
  // pipeline") targets. Gates plan compilation, merged-walk candidate
  // probes, and the selection-vector stages on top of the solve; the
  // abl_match_pipeline bench separately pins the on/off equivalence.
  {
    WhyFactoryOptions factory = GateFactory(cfg.seed);
    factory.query.max_literals = 5;
    add("match_pipeline_quick", ImdbLike(cfg.scale), &MakeBenchCases,
        cfg.queries, factory, &MakeAnsW);
  }

  // fig12a family: Why-many — mostly-relaxing disturbances yield unexpected
  // answers for ApxWhyM to diagnose.
  {
    WhyFactoryOptions factory = GateFactory(cfg.seed);
    factory.disturb.refine_prob = 0.1;
    add("fig12a_quick", ImdbLike(cfg.scale), &MakeBenchCases, cfg.queries,
        factory, &MakeApxWhyM);
  }

  // fig12c family: Why-empty — small over-refined queries with no answers.
  {
    WhyFactoryOptions factory = GateFactory(cfg.seed);
    factory.query.num_edges = 2;
    add("fig12c_quick", DbpediaLike(cfg.scale), &MakeWhyEmptyCases,
        std::max<size_t>(cfg.queries / 2, 2), factory, &MakeAnsWE);
  }

  // serve family: sustained throughput through the concurrent serving layer —
  // the fig10a workload pushed closed-loop through serve::Server, gating
  // executor dispatch, admission control, and shared-artifact synchronization
  // on top of the solve itself. Several passes over the case set keep all
  // drainers busy; answers are byte-identical to sequential solves, so the
  // quality columns gate exactly like the other benches, and the server
  // records solve.latency_ns into the bench scope for the latency quantiles.
  {
    struct ServeState {
      std::unique_ptr<Graph> graph;
      std::vector<BenchCase> cases;
      std::unique_ptr<serve::Server> server;
      ChaseOptions opts;
    };
    QuickBench b;
    b.name = "serve_quick";
    b.obs = std::make_unique<obs::Observability>();
    auto st = std::make_shared<ServeState>();
    st->graph = std::make_unique<Graph>(GenerateGraph(ImdbLike(cfg.scale)));
    st->cases = MakeBenchCases(*st->graph, cfg.queries, GateFactory(cfg.seed));
    st->opts = GateChase(cfg, b.obs.get());
    // Deadlines are armed at admission, so queue wait under closed-loop
    // submission would burn the 5s budget on a slow machine and flip the
    // gated quality columns nondeterministically. Identity under
    // concurrency is the contract; deadline behavior is tested elsewhere.
    st->opts.time_limit_seconds = 0;
    serve::ServerOptions sopts;
    sopts.observability = b.obs.get();
    sopts.cache_dir = cfg.cache_dir;
    // Telemetry stays ON for the gated bench (ephemeral port): the
    // acceptance bar is that serving with the exposition listener, sliding
    // SLO windows, and the flight recorder live costs nothing measurable
    // against BENCH_BASELINE.json.
    sopts.telemetry_port = 0;
    st->server = std::make_unique<serve::Server>(*st->graph, sopts);
    b.run = [st] {
      constexpr size_t kPasses = 4;
      AlgoSummary s;
      s.name = "serve";
      std::vector<std::future<Response>> futures;
      futures.reserve(st->cases.size() * kPasses);
      Timer batch;
      for (size_t pass = 0; pass < kPasses; ++pass) {
        for (const BenchCase& c : st->cases) {
          Request req;
          req.question = c.question;
          req.options = st->opts;
          req.algorithm = Algorithm::kAnsW;
          futures.push_back(st->server->Submit(std::move(req)));
        }
      }
      for (size_t i = 0; i < futures.size(); ++i) {
        const Response resp = futures[i].get();
        const BenchCase& c = st->cases[i % st->cases.size()];
        double closeness = 0, delta = 0;
        bool satisfied = false;
        if (resp.found()) {
          const WhyAnswer& best = resp.best();
          closeness = best.closeness;
          delta = AnswerJaccard(best.matches, c.gt_answer);
          satisfied = best.satisfies_exemplar;
        }
        s.closeness.Add(closeness);
        s.delta.Add(delta);
        s.im_reduction.Add(0);
        if (satisfied) ++s.satisfied;
        ++s.cases;
      }
      // Per-request share of the batch wall: the inverse of sustained QPS,
      // in the same per-case unit the sequential benches report.
      const double per_req =
          batch.ElapsedSeconds() / static_cast<double>(futures.size());
      for (size_t i = 0; i < futures.size(); ++i) s.seconds.Add(per_req);
      return s;
    };
    suite.push_back(std::move(b));
  }

  // cold_start family: store-v2 serving-state restore — each repeat opens
  // the mmap bundle fresh (full verification) and answers the fig10a
  // workload on the mapped state, so the gated wall covers attach + solve
  // and a slow open regresses min_wall_s directly. The quality columns are
  // computed against reference answers solved on the heap-built state during
  // setup and are ZEROED on any fingerprint mismatch: a parity break craters
  // closeness/satisfied far past their thresholds instead of hiding behind a
  // timing column.
  {
    namespace fs = std::filesystem;
    struct ColdState {
      std::unique_ptr<Graph> graph;
      std::vector<BenchCase> cases;
      ChaseOptions opts;
      std::string dir;
      bool own_dir = false;
      std::unique_ptr<store::ArtifactStore> store;
      std::vector<std::string> reference;
      ~ColdState() {
        if (own_dir) {
          std::error_code ec;
          fs::remove_all(dir, ec);
        }
      }
    };
    QuickBench b;
    b.name = "cold_start_quick";
    b.obs = std::make_unique<obs::Observability>();
    auto st = std::make_shared<ColdState>();
    st->graph = std::make_unique<Graph>(GenerateGraph(ImdbLike(cfg.scale)));
    st->cases = MakeBenchCases(*st->graph, cfg.queries, GateFactory(cfg.seed));
    st->opts = GateChase(cfg, b.obs.get());
    st->own_dir = cfg.cache_dir.empty();
    st->dir = st->own_dir
                  ? (fs::temp_directory_path() / "wqe_gate_cold_start").string()
                  : cfg.cache_dir + "/cold_start";
    if (st->own_dir) {
      std::error_code ec;
      fs::remove_all(st->dir, ec);
    }
    st->store = std::make_unique<store::ArtifactStore>(
        st->dir, store::Serde::GraphFingerprint(*st->graph), b.obs.get());
    {
      GraphIndexes heap(*st->graph, cfg.threads, st->store.get());
      st->store->SaveBundle(*st->graph, heap.adom, heap.diameter, heap.dist,
                            DistanceIndex::Options());
      st->reference.reserve(st->cases.size());
      for (const BenchCase& c : st->cases) {
        Request req;
        req.question = c.question;
        req.options = st->opts;
        const Response r =
            Execute(*st->graph, &heap, nullptr, nullptr, req);
        st->reference.push_back(r.found() ? r.best().rewrite.Fingerprint()
                                          : std::string());
      }
    }
    b.run = [st] {
      AlgoSummary s;
      s.name = "cold_start";
      std::unique_ptr<MappedServingState> mapped;
      const bool opened =
          OpenServingState(*st->store, DistanceIndex::Options(),
                           store::BundleOpenOptions(), &mapped)
              .ok();
      bool parity = opened;
      struct CaseQuality {
        double closeness = 0, delta = 0;
        bool satisfied = false;
      };
      std::vector<CaseQuality> quality(st->cases.size());
      for (size_t i = 0; i < st->cases.size() && opened; ++i) {
        const BenchCase& c = st->cases[i];
        Request req;
        req.question = c.question;
        req.options = st->opts;
        const Response resp =
            Execute(mapped->graph(), &mapped->indexes, nullptr, nullptr, req);
        const std::string fp = resp.found()
                                   ? resp.best().rewrite.Fingerprint()
                                   : std::string();
        parity = parity && fp == st->reference[i];
        if (resp.found()) {
          quality[i] = {resp.best().closeness,
                        AnswerJaccard(resp.best().matches, c.gt_answer),
                        resp.best().satisfies_exemplar};
        }
      }
      for (const CaseQuality& q : quality) {
        s.closeness.Add(parity ? q.closeness : 0.0);
        s.delta.Add(parity ? q.delta : 0.0);
        s.im_reduction.Add(0);
        if (parity && q.satisfied) ++s.satisfied;
        ++s.cases;
      }
      return s;
    };
    suite.push_back(std::move(b));
  }

  return suite;
}

}  // namespace wqe::gate

#endif  // WQE_BENCH_SUITE_MANIFEST_H_
