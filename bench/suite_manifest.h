#ifndef WQE_BENCH_SUITE_MANIFEST_H_
#define WQE_BENCH_SUITE_MANIFEST_H_

// The curated quick-mode suite the benchmark regression gate runs: one
// representative bench per figure family (Why efficiency, heuristic quality,
// Why-many, Why-empty), each a scaled-down fig10/fig12 configuration that
// finishes in well under a second so the gate can afford several repeats.
//
// The manifest is a header (not a library .cc) so `tools/bench_gate.cc` and
// the gate tests share the exact same bench definitions — a drifted copy in
// either place would silently gate against a different workload than the
// committed baseline measured.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "gen/datasets.h"
#include "gen/synthetic.h"
#include "obs/observability.h"
#include "workload/suite.h"

namespace wqe::gate {

/// Knobs for one gate run. Quick-mode defaults (scale 0.05, 3 queries) keep
/// the four-bench suite to a few seconds per repeat on one core; the
/// committed baseline was produced with exactly these values, so overriding
/// them only makes sense together with `--write-baseline`.
struct GateBenchConfig {
  double scale = 0.05;
  size_t queries = 3;
  uint64_t seed = 1;
  size_t threads = 1;
  std::string cache_dir;
};

/// A prepared quick bench: graph + cases + runner built once, so repeats
/// measure only the solve work (the §7 protocol prebuilds indexes the same
/// way). Each bench owns a private Observability scope, so its
/// `solve.latency_ns` histogram and cache/store counters are not mixed with
/// the other suite entries'. Heap-held members keep the runner's references
/// stable across vector moves.
struct QuickBench {
  std::string name;
  std::unique_ptr<obs::Observability> obs;
  std::unique_ptr<Graph> graph;
  std::unique_ptr<ExperimentRunner> runner;
  AlgoSpec algo;

  AlgoSummary RunOnce() const { return runner->Run(algo); }
};

/// Gate mirror of bench_common.h's DefaultChase, minus the environment
/// reads: the gate's workload must not vary with WQE_* in the caller's
/// shell, or the comparison against the committed baseline is meaningless.
inline ChaseOptions GateChase(const GateBenchConfig& cfg,
                              obs::Observability* obs) {
  ChaseOptions opts;
  opts.budget = 3;
  opts.beam = 2;
  opts.max_steps = 4000;
  opts.time_limit_seconds = 5.0;
  opts.num_threads = cfg.threads;
  opts.observability = obs;
  return opts;
}

inline WhyFactoryOptions GateFactory(uint64_t seed) {
  WhyFactoryOptions opts;
  opts.query.num_edges = 3;
  opts.query.max_literals = 3;
  opts.disturb.num_ops = 3;
  opts.max_tuples = 10;
  opts.seed = seed;
  return opts;
}

/// Builds the quick suite. Names are stable identifiers — the committed
/// baseline keys on them, so renaming a bench is a re-baselining event.
inline std::vector<QuickBench> BuildQuickSuite(const GateBenchConfig& cfg) {
  std::vector<QuickBench> suite;

  using CaseMaker = std::vector<BenchCase> (*)(const Graph&, size_t,
                                               const WhyFactoryOptions&);
  auto add = [&](std::string name, GraphSpec spec, CaseMaker make_cases,
                 size_t n, const WhyFactoryOptions& factory,
                 AlgoSpec (*make_algo)(const ChaseOptions&)) {
    QuickBench b;
    b.name = std::move(name);
    b.obs = std::make_unique<obs::Observability>();
    b.graph = std::make_unique<Graph>(GenerateGraph(spec));
    b.runner = std::make_unique<ExperimentRunner>(
        *b.graph, make_cases(*b.graph, n, factory), cfg.threads, cfg.cache_dir,
        b.obs.get());
    b.algo = make_algo(GateChase(cfg, b.obs.get()));
    suite.push_back(std::move(b));
  };

  // fig10a family: exact Why answering on the IMDB-shaped graph.
  add("fig10a_quick", ImdbLike(cfg.scale), &MakeBenchCases, cfg.queries,
      GateFactory(cfg.seed), &MakeAnsW);

  // fig10c family: the beam heuristic on the heterogeneous DBpedia shape.
  add("fig10c_quick", DbpediaLike(cfg.scale), &MakeBenchCases, cfg.queries,
      GateFactory(cfg.seed),
      +[](const ChaseOptions& base) { return MakeAnsHeu(base, /*beam=*/2); });

  // fig10d family: deep chase — budget above the §7 default, the regime the
  // incremental evaluation path (DESIGN.md "Incremental evaluation") exists
  // for; gates the delta path's per-evaluation cost on refine-heavy repairs.
  {
    WhyFactoryOptions factory = GateFactory(cfg.seed);
    factory.disturb.refine_prob = 0.15;
    add("fig10d_quick", DbpediaLike(cfg.scale), &MakeBenchCases, cfg.queries,
        factory, +[](const ChaseOptions& base) {
          ChaseOptions deep = base;
          deep.budget = 5;
          return MakeAnsW(deep);
        });
  }

  // fig12a family: Why-many — mostly-relaxing disturbances yield unexpected
  // answers for ApxWhyM to diagnose.
  {
    WhyFactoryOptions factory = GateFactory(cfg.seed);
    factory.disturb.refine_prob = 0.1;
    add("fig12a_quick", ImdbLike(cfg.scale), &MakeBenchCases, cfg.queries,
        factory, &MakeApxWhyM);
  }

  // fig12c family: Why-empty — small over-refined queries with no answers.
  {
    WhyFactoryOptions factory = GateFactory(cfg.seed);
    factory.query.num_edges = 2;
    add("fig12c_quick", DbpediaLike(cfg.scale), &MakeWhyEmptyCases,
        std::max<size_t>(cfg.queries / 2, 2), factory, &MakeAnsWE);
  }

  return suite;
}

}  // namespace wqe::gate

#endif  // WQE_BENCH_SUITE_MANIFEST_H_
