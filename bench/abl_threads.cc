// Ablation: the parallel evaluation layer (DESIGN.md "Parallel execution").
// Runs AnsW over one workload at num_threads = 1 / 2 / 4, asserting that the
// suggested rewrites are *identical* — same answer sets, same closeness —
// across thread counts (the layer's byte-identical contract), and reports
// the wall-clock speedup of each parallel configuration over the serial run.
// The speedup shape is only asserted on multi-core hardware; determinism is
// asserted everywhere (worker threads run real cross-thread work even on a
// single core).

#include "bench_common.h"
#include "common/thread_pool.h"
#include "common/timer.h"

using namespace wqe;
using namespace wqe::bench;

namespace {

struct ConfigResult {
  double seconds = 0;  // index build + all questions
  std::vector<std::vector<NodeId>> matches;
  std::vector<double> closeness;
};

}  // namespace

int main(int argc, char** argv) {
  BenchEnv env(argc, argv);
  Header("abl_threads", "parallel evaluation layer: determinism and speedup");

  Graph g = GenerateGraph(DbpediaLike(env.scale));
  auto cases = MakeBenchCases(g, env.queries, DefaultFactory(env.seed));
  const ChaseOptions base = DefaultChase();

  auto run_config = [&](size_t threads) {
    ChaseOptions opts = base;
    opts.num_threads = threads;
    ConfigResult r;
    Timer timer;
    GraphIndexes indexes(g, threads);  // parallel distance-index build
    for (const BenchCase& c : cases) {
      ChaseContext ctx(g, &indexes, c.question, opts);
      const ChaseResult res = ExecuteWithContext(ctx, Algorithm::kAnsW).result;
      r.matches.push_back(res.best().matches);
      r.closeness.push_back(res.best().closeness);
    }
    r.seconds = timer.ElapsedSeconds();
    return r;
  };

  const ConfigResult serial = run_config(1);
  std::printf("abl_threads,AnsW,threads=1,seconds=%.4f,speedup=1.00\n",
              serial.seconds);

  bool identical = true;
  double speedup_at_4 = 0;
  for (const size_t t : {size_t{2}, size_t{4}}) {
    const ConfigResult par = run_config(t);
    identical = identical && par.matches == serial.matches &&
                par.closeness == serial.closeness;
    const double speedup =
        par.seconds > 0 ? serial.seconds / par.seconds : 0;
    if (t == 4) speedup_at_4 = speedup;
    std::printf("abl_threads,AnsW,threads=%zu,seconds=%.4f,speedup=%.2f\n", t,
                par.seconds, speedup);
  }
  std::printf("#AGG hardware_threads=%zu speedup@4=%.2f\n",
              ThreadPool::HardwareThreads(), speedup_at_4);

  Shape(identical,
        "answers and closeness are identical across thread counts");
  if (ThreadPool::HardwareThreads() >= 4) {
    Shape(speedup_at_4 >= 2.0, "num_threads=4 is >=2x faster than serial");
  } else {
    std::printf("# speedup shape skipped: %zu hardware thread(s)\n",
                ThreadPool::HardwareThreads());
  }
  return identical ? env.Finish() : 1;
}
