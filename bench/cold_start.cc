// cold_start: time-to-serving-state from persisted artifacts — the store v1
// heap path (snapshot decode + index deserialization) against the store v2
// mmap bundle attach (DESIGN.md "Persistence"). Both sides start from files
// the arrange phase wrote, so the measurement isolates restore cost: v1 pays
// interning, Finalize sorts, and per-element decoding; v2 pays a checksum
// scan and pointer fixup over the mapped columns.
//
// The gated invariant is the tentpole promise: the zero-copy attach is at
// least an order of magnitude faster than the heap restore at full
// verification, and answers computed on the mapped state are byte-identical
// to the heap reference — including under multi-threaded evaluation.

#include <cstdio>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "chase/eval.h"
#include "chase/solve.h"
#include "store/artifact_store.h"
#include "store/mmap_layout.h"
#include "store/serde.h"

using namespace wqe;
using namespace wqe::bench;

namespace {

namespace fs = std::filesystem;

/// Min over repeats: reproducible within a few percent on a throttled box
/// (same rationale as the gate's min_wall_s).
double MinSeconds(size_t reps, const std::function<void()>& body) {
  double best = -1;
  for (size_t i = 0; i < reps; ++i) {
    Timer t;
    body();
    const double s = t.ElapsedSeconds();
    if (best < 0 || s < best) best = s;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  BenchEnv env(argc, argv);
  Header("cold_start",
         "store v1 heap deserialization vs store v2 mmap bundle attach");

  // The largest dataset preset (ImdbLike ~17k nodes at scale 1).
  Graph g = GenerateGraph(ImdbLike(env.scale));
  const uint64_t fp = store::Serde::GraphFingerprint(g);

  const bool own_dir = env.cache_dir.empty();
  const std::string dir =
      own_dir ? (fs::temp_directory_path() / "wqe_cold_start_bench").string()
              : env.cache_dir;
  if (own_dir) fs::remove_all(dir);

  store::ArtifactStore store(dir, fp, &BenchObs());
  const std::string snapshot = dir + "/graph.wqes";

  // Arrange (untimed): one heap build, then persist both generations — the
  // v1 artifact files GraphIndexes wrote back on its misses, the whole-graph
  // snapshot, and the v2 bundle.
  GraphIndexes built(g, env.threads, &store);
  bool ok = store::ArtifactStore::SaveGraphSnapshot(snapshot, g, fp).ok() &&
            store
                .SaveBundle(g, built.adom, built.diameter, built.dist,
                            DistanceIndex::Options())
                .ok();
  if (!ok) {
    Shape(false, "failed to persist cold-start artifacts");
    return env.Finish();
  }

  constexpr size_t kReps = 5;

  // v1 heap cold start: decode the snapshot into a fresh graph, then restore
  // the indexes through the store (all hits — nothing is rebuilt).
  const double heap_s = MinSeconds(kReps, [&] {
    Graph g2;
    if (!store::ArtifactStore::LoadGraphSnapshot(snapshot, fp, &g2).ok()) {
      ok = false;
      return;
    }
    GraphIndexes idx(g2, /*num_threads=*/1, &store);
    if (idx.diameter != built.diameter) ok = false;
  });

  // v2 mmap cold start at full verification (the default open), and at the
  // header-only trust level for the trusted-local comparison point.
  const store::BundleOpenOptions full_verify;
  store::BundleOpenOptions header_only;
  header_only.verify = store::BundleVerify::kHeaderOnly;
  auto time_open = [&](const store::BundleOpenOptions& opts) {
    return MinSeconds(kReps, [&] {
      std::unique_ptr<MappedServingState> st;
      if (!OpenServingState(store, DistanceIndex::Options(), opts, &st).ok()) {
        ok = false;
      }
    });
  };
  const double mmap_s = time_open(full_verify);
  const double mmap_hdr_s = time_open(header_only);

  std::printf("cold_start,heap,v1_snapshot,nodes=%zu,seconds=%.5f\n",
              static_cast<size_t>(g.num_nodes()), heap_s);
  std::printf("cold_start,mmap,v2_full_verify,seconds=%.5f,speedup=%.1fx\n",
              mmap_s, mmap_s > 0 ? heap_s / mmap_s : 0.0);
  std::printf("cold_start,mmap,v2_header_only,seconds=%.5f,speedup=%.1fx\n",
              mmap_hdr_s, mmap_hdr_s > 0 ? heap_s / mmap_hdr_s : 0.0);

  // Parity: the same workload answered on the heap state and on the mapped
  // state (serial and multi-threaded) must produce byte-identical rewrites.
  std::unique_ptr<MappedServingState> mapped;
  if (!OpenServingState(store, DistanceIndex::Options(), full_verify, &mapped)
           .ok()) {
    Shape(false, "bundle written by this run failed to reopen");
    return env.Finish();
  }
  const std::vector<BenchCase> cases =
      MakeBenchCases(g, env.queries, DefaultFactory(env.seed));
  auto answers = [&](const Graph& rg, GraphIndexes* idx, size_t threads) {
    std::vector<std::string> out;
    out.reserve(cases.size());
    for (const BenchCase& c : cases) {
      Request req;
      req.question = c.question;
      req.options = DefaultChase();
      req.options.num_threads = threads;
      const Response r = Execute(rg, idx, nullptr, nullptr, req);
      out.push_back(r.found() ? r.best().rewrite.Fingerprint()
                              : std::string());
    }
    return out;
  };
  const std::vector<std::string> reference = answers(g, &built, 1);
  const bool identical = reference == answers(mapped->graph(),
                                              &mapped->indexes, 1) &&
                         reference == answers(mapped->graph(),
                                              &mapped->indexes, 4);
  std::printf("cold_start,parity,answers,cases=%zu,identical=%d\n",
              cases.size(), identical ? 1 : 0);

  const double speedup = mmap_s > 0 ? heap_s / mmap_s : 0.0;
  char verdict[160];
  std::snprintf(verdict, sizeof(verdict),
                "mmap attach %.1fx faster than heap restore (>= 10x gated) "
                "with byte-identical answers at 1 and 4 threads",
                speedup);
  Shape(ok && identical && speedup >= 10.0, verdict);

  mapped.reset();
  if (own_dir) fs::remove_all(dir);
  return env.Finish();
}
