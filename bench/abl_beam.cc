// Ablation (DESIGN.md §4.4): AnsHeu beam width k = 1..8 — quality/latency
// trade-off — plus AnsHeu vs AnsHeuB (picky vs random operator selection) at
// matched beam widths.

#include "bench_common.h"

using namespace wqe;
using namespace wqe::bench;

int main(int argc, char** argv) {
  BenchEnv env(argc, argv);
  Header("abl_beam", "beam width and operator-selection ablation");

  Graph g = GenerateGraph(DbpediaLike(env.scale));
  auto cases = MakeBenchCases(g, env.queries, DefaultFactory(env.seed));
  ExperimentRunner runner(g, std::move(cases), env.threads, env.cache_dir,
                            &BenchObs());
  ChaseOptions base = DefaultChase();

  double k1_cl = 0, k8_cl = 0, k1_time = 0, k8_time = 0;
  for (size_t beam : {1u, 2u, 4u, 8u}) {
    AlgoSummary picky = runner.Run(MakeAnsHeu(base, beam));
    PrintRow("abl_beam", "picky", "k=" + std::to_string(beam), picky);
    AlgoSummary random = runner.Run(MakeAnsHeuB(base, beam));
    PrintRow("abl_beam", "random", "k=" + std::to_string(beam), random);
    if (beam == 1) {
      k1_cl = picky.closeness.Mean();
      k1_time = picky.seconds.Mean();
    }
    if (beam == 8) {
      k8_cl = picky.closeness.Mean();
      k8_time = picky.seconds.Mean();
    }
  }

  std::printf("#AGG closeness k=1: %.4f -> k=8: %.4f; time k=1: %.4fs -> "
              "k=8: %.4fs\n",
              k1_cl, k8_cl, k1_time, k8_time);
  Shape(k8_cl + 1e-9 >= k1_cl, "wider beams do not lose closeness");
  Shape(k8_time >= k1_time, "wider beams cost more time");
  return env.Finish();
}
