// serve_qps: sustained-QPS sweep through the concurrent serving layer
// (DESIGN.md "Serving"). The fig10a workload is submitted to a serve::Server
// open-loop at increasing offered arrival rates, ending with a closed-loop
// pass that measures peak sustainable throughput under admission control.
// Reported per rate: achieved QPS, shed count, and admission-to-completion
// latency quantiles from the server's serve.latency_ns histogram delta.
//
// The gated invariant is not a wall-clock number (machine-dependent) but the
// serving layer's core promise: answers stay byte-identical to a sequential
// reference at every offered load, and nothing fails outright — overload is
// expressed only as structured kOverloaded shedding.

#include <chrono>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "chase/solve.h"
#include "obs/metrics.h"
#include "serve/server.h"
#include "workload/why_factory.h"

using namespace wqe;
using namespace wqe::bench;

namespace {

double QuantileMsDelta(const obs::Histogram::Snapshot& before,
                       const obs::Histogram::Snapshot& after, double q) {
  obs::Histogram::Snapshot d = after;
  d.count -= before.count;
  d.sum -= before.sum;
  for (size_t i = 0; i < d.buckets.size() && i < before.buckets.size(); ++i) {
    d.buckets[i] -= before.buckets[i];
  }
  return static_cast<double>(d.Quantile(q)) / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  BenchEnv env(argc, argv);
  Header("serve_qps", "sustained QPS through serve::Server vs offered load");

  Graph g = GenerateGraph(ImdbLike(env.scale));
  const std::vector<BenchCase> cases =
      MakeBenchCases(g, env.queries, DefaultFactory(env.seed));
  if (cases.empty()) {
    Shape(false, "workload generation produced no cases");
    return env.Finish();
  }

  serve::ServerOptions sopts;
  sopts.observability = &BenchObs();
  sopts.cache_dir = env.cache_dir;
  serve::Server server(g, sopts);

  ChaseOptions opts = DefaultChase();
  // No per-request deadline: the server arms limits at ADMISSION, so under
  // open-loop saturation a queued request would burn its budget waiting and
  // return a (legitimate) anytime answer — voiding the byte-identity check
  // this bench gates. Deadline behavior has its own tests/serve_test.cc
  // coverage; here the contract under test is identity under concurrency.
  opts.time_limit_seconds = 0;

  auto make_request = [&](size_t i) {
    Request req;
    req.question = cases[i % cases.size()].question;
    req.options = opts;
    req.algorithm = Algorithm::kAnsW;
    req.id = i;
    return req;
  };

  // Sequential reference: one pass, one request in flight at a time. The
  // concurrent sweeps below must reproduce these rewrites byte for byte.
  std::vector<std::string> reference;
  reference.reserve(cases.size());
  for (size_t i = 0; i < cases.size(); ++i) {
    const Response resp = server.Serve(make_request(i));
    reference.push_back(resp.found() ? resp.best().rewrite.Fingerprint()
                                     : std::string());
  }

  const size_t requests = cases.size() * 8;
  obs::Histogram& latency = BenchObs().metrics.histogram("serve.latency_ns");

  bool identical = true;
  size_t failed = 0;
  uint64_t shed_before = server.stats().shed;
  for (const double qps : {25.0, 100.0, 400.0, 0.0}) {
    const obs::Histogram::Snapshot lat0 = latency.Snap();
    std::vector<std::future<Response>> futures;
    futures.reserve(requests);
    Timer wall;
    for (size_t i = 0; i < requests; ++i) {
      if (qps > 0) {
        const double due = static_cast<double>(i) / qps;
        while (wall.ElapsedSeconds() < due) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      }
      futures.push_back(server.Submit(make_request(i)));
    }
    size_t completed = 0, shed = 0;
    for (size_t i = 0; i < futures.size(); ++i) {
      const Response resp = futures[i].get();
      if (resp.status.code() == Status::Code::kOverloaded) {
        ++shed;
        continue;
      }
      if (!resp.ok()) {
        ++failed;
        continue;
      }
      ++completed;
      const std::string fp =
          resp.found() ? resp.best().rewrite.Fingerprint() : std::string();
      identical = identical && fp == reference[i % reference.size()];
    }
    const double seconds = wall.ElapsedSeconds();
    const obs::Histogram::Snapshot lat1 = latency.Snap();
    std::printf(
        "serve_qps,AnsW,offered=%s,achieved_qps=%.1f,completed=%zu,shed=%zu,"
        "p50_ms=%.2f,p99_ms=%.2f\n",
        qps > 0 ? std::to_string(static_cast<int>(qps)).c_str() : "closed",
        seconds > 0 ? static_cast<double>(completed) / seconds : 0.0,
        completed, shed, QuantileMsDelta(lat0, lat1, 0.5),
        QuantileMsDelta(lat0, lat1, 0.99));
  }
  const uint64_t shed_total = server.stats().shed - shed_before;

  Shape(identical && failed == 0,
        "answers byte-identical to the sequential reference at every offered "
        "load; overload surfaces only as structured shedding (shed=" +
            std::to_string(shed_total) + ", failed=" + std::to_string(failed) +
            ")");
  return env.Finish();
}
