// Fig 12(b): Why-Many effectiveness — how much of the irrelevant-match set
// ApxWhyM removes (with its 1/2(1-1/e) guarantee) compared to the exact
// search, on DBpedia-like and IMDB-like.

#include "bench_common.h"

using namespace wqe;
using namespace wqe::bench;

int main(int argc, char** argv) {
  BenchEnv env(argc, argv);
  Header("fig12b", "Why-Many IM reduction (dbpedia_like, imdb_like)");

  ChaseOptions base = DefaultChase();
  Aggregate apx_reduction, answ_reduction;

  for (const GraphSpec& spec : {DbpediaLike(env.scale), ImdbLike(env.scale)}) {
    Graph g = GenerateGraph(spec);
    WhyFactoryOptions factory = DefaultFactory(env.seed);
    factory.disturb.refine_prob = 0.1;  // relax-heavy: too many matches
    auto cases = MakeBenchCases(g, env.queries, factory);
    ExperimentRunner runner(g, std::move(cases), env.threads, env.cache_dir,
                            &BenchObs());

    AlgoSummary sa = runner.Run(MakeApxWhyM(base));
    PrintRow("fig12b", spec.name, "ApxWhyM", sa);
    apx_reduction.Add(sa.im_reduction.Mean());

    AlgoSummary sw = runner.Run(MakeAnsW(base));
    PrintRow("fig12b", spec.name, "AnsW", sw);
    answ_reduction.Add(sw.im_reduction.Mean());
  }

  std::printf("#AGG IM reduction ApxWhyM=%.3f AnsW=%.3f\n",
              apx_reduction.Mean(), answ_reduction.Mean());
  Shape(apx_reduction.Mean() >= 0.1,
        "ApxWhyM removes a substantial share of irrelevant matches");
  Shape(apx_reduction.Mean() >= 0.4 * std::max(answ_reduction.Mean(), 1e-9),
        "approximation quality is within a constant factor of exact search");
  return env.Finish();
}
