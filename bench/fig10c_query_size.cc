// Fig 10(c): time vs query size |E_Q| = 1..6 on DBpedia-like (B = 3). All
// algorithms slow on larger queries; AnsW / AnsHeu are the least sensitive.

#include "bench_common.h"

using namespace wqe;
using namespace wqe::bench;

int main(int argc, char** argv) {
  BenchEnv env(argc, argv);
  Header("fig10c", "time vs |E_Q| (dbpedia_like)");

  Graph g = GenerateGraph(DbpediaLike(env.scale));
  ChaseOptions base = DefaultChase();

  Aggregate answ_small, answ_large, answb_small, answb_large;
  for (size_t edges = 1; edges <= 6; ++edges) {
    WhyFactoryOptions factory = DefaultFactory(env.seed);
    factory.query.num_edges = edges;
    auto cases = MakeBenchCases(g, env.queries, factory);
    if (cases.empty()) continue;
    ExperimentRunner runner(g, std::move(cases), env.threads, env.cache_dir,
                            &BenchObs());
    for (AlgoSpec algo :
         {MakeAnsHeu(base, 2), MakeAnsW(base), MakeAnsWb(base)}) {
      AlgoSummary s = runner.Run(algo);
      PrintRow("fig10c", algo.name, std::to_string(edges), s);
      if (algo.name == "AnsW") {
        (edges <= 2 ? answ_small : answ_large).Add(s.seconds.Mean());
      } else if (algo.name == "AnsWb") {
        (edges <= 2 ? answb_small : answb_large).Add(s.seconds.Mean());
      }
    }
  }

  Shape(answ_large.Mean() >= answ_small.Mean() * 0.8,
        "larger queries cost more time to verify");
  const double answ_sensitivity = answ_large.Mean() / std::max(answ_small.Mean(), 1e-9);
  const double answb_sensitivity =
      answb_large.Mean() / std::max(answb_small.Mean(), 1e-9);
  std::printf("#AGG sensitivity AnsW=%.2fx AnsWb=%.2fx (small->large |E_Q|)\n",
              answ_sensitivity, answb_sensitivity);
  Shape(answ_sensitivity <= answb_sensitivity * 1.5,
        "AnsW is less sensitive to |E_Q| than AnsWb (star views)");
  return env.Finish();
}
