// Fig 10(e): time vs cost budget B = 1..5 on IMDB-like (same protocol as
// Fig 10(d) on the second dataset).

#include "bench_common.h"

using namespace wqe;
using namespace wqe::bench;

int main(int argc, char** argv) {
  BenchEnv env(argc, argv);
  Header("fig10e", "time vs budget B (imdb_like)");

  Graph g = GenerateGraph(ImdbLike(env.scale));
  auto cases = MakeBenchCases(g, env.queries, DefaultFactory(env.seed));
  ExperimentRunner runner(g, std::move(cases), env.threads, env.cache_dir,
                            &BenchObs());

  double answ_b1 = 0, answ_b5 = 0;
  for (int budget = 1; budget <= 5; ++budget) {
    ChaseOptions base = DefaultChase();
    base.budget = budget;
    for (AlgoSpec algo : {MakeAnsHeu(base, 2), MakeAnsW(base), MakeAnsWb(base)}) {
      AlgoSummary s = runner.Run(algo);
      PrintRow("fig10e", algo.name, "B=" + std::to_string(budget), s);
      if (algo.name == "AnsW") {
        if (budget == 1) answ_b1 = s.seconds.Mean();
        if (budget == 5) answ_b5 = s.seconds.Mean();
      }
    }
  }
  Shape(answ_b5 >= answ_b1,
        "time grows with budget on imdb_like as well");
  return env.Finish();
}
