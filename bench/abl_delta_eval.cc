// Ablation: the incremental evaluation path (DESIGN.md "Incremental
// evaluation"). Runs AnsW over deep-chase workloads (budget above the §7
// default, so most evaluations are child rewrites one op away from an
// already-evaluated parent) with ChaseOptions::use_delta_eval off and on,
// asserting that the suggested rewrites are *identical* — same answer sets,
// same closeness — and reporting the wall-clock speedup of delta-aware
// re-verification over full per-node evaluation. max_steps bounds both
// configurations to the same explored tree, so the speedup isolates
// per-evaluation work: table reuse, answer-delta verification, and
// incumbent-bound cuts.

#include "bench_common.h"
#include "common/timer.h"

using namespace wqe;
using namespace wqe::bench;

namespace {

struct ConfigResult {
  double seconds = 0;
  uint64_t evaluations = 0;
  uint64_t bound_cuts = 0;
  uint64_t delta_hits = 0;
  uint64_t full_fallbacks = 0;
  std::vector<std::vector<NodeId>> matches;
  std::vector<double> closeness;
};

}  // namespace

int main(int argc, char** argv) {
  BenchEnv env(argc, argv);
  Header("abl_delta_eval",
         "incremental star re-verification: equivalence and speedup");

  struct DeepConfig {
    const char* name;
    GraphSpec spec;
    int64_t budget;
  };
  const DeepConfig configs[] = {
      {"dbpedia_b5", DbpediaLike(env.scale), 5},
      {"imdb_b4", ImdbLike(env.scale), 4},
  };

  bool identical = true;
  int wins = 0;
  for (const DeepConfig& dc : configs) {
    Graph g = GenerateGraph(dc.spec);
    // Mostly-relaxing disturbances: the repairs the chase must discover are
    // then refinement-heavy, the regime where incremental evaluation pays
    // (a refine step re-verifies only the parent's surviving matches instead
    // of the full candidate set).
    WhyFactoryOptions factory = DefaultFactory(env.seed);
    factory.disturb.refine_prob = 0.15;
    auto cases = MakeBenchCases(g, env.queries, factory);
    GraphIndexes indexes(g, env.threads);

    auto run_config = [&](bool use_delta) {
      ChaseOptions opts = DefaultChase();
      opts.budget = static_cast<double>(dc.budget);
      // Deep chases must run to their step cap, not the per-question safety
      // valve: a timeout would truncate the two configurations at different
      // tree depths and void the equivalence comparison.
      opts.time_limit_seconds = 120.0;
      opts.use_delta_eval = use_delta;
      ConfigResult r;
      obs::MetricsRegistry& m = BenchObs().metrics;
      const uint64_t hits0 = m.counter("delta_eval.hits").Value();
      const uint64_t falls0 = m.counter("delta_eval.full_fallbacks").Value();
      Timer timer;
      for (const BenchCase& c : cases) {
        ChaseContext ctx(g, &indexes, c.question, opts);
        const ChaseResult res = ExecuteWithContext(ctx, Algorithm::kAnsW).result;
        r.evaluations += res.stats.evaluations;
        r.bound_cuts += res.stats.bound_cuts;
        r.matches.push_back(res.best().matches);
        r.closeness.push_back(res.best().closeness);
      }
      r.seconds = timer.ElapsedSeconds();
      r.delta_hits = m.counter("delta_eval.hits").Value() - hits0;
      r.full_fallbacks = m.counter("delta_eval.full_fallbacks").Value() - falls0;
      return r;
    };

    const ConfigResult full = run_config(false);
    const ConfigResult delta = run_config(true);
    identical = identical && full.matches == delta.matches &&
                full.closeness == delta.closeness;
    const double speedup =
        delta.seconds > 0 ? full.seconds / delta.seconds : 0;
    if (speedup >= 1.3) ++wins;
    std::printf(
        "abl_delta_eval,%s,delta=off,seconds=%.4f,evaluations=%llu\n",
        dc.name, full.seconds,
        static_cast<unsigned long long>(full.evaluations));
    std::printf(
        "abl_delta_eval,%s,delta=on,seconds=%.4f,evaluations=%llu,"
        "delta_hits=%llu,full_fallbacks=%llu,bound_cuts=%llu,speedup=%.2f\n",
        dc.name, delta.seconds,
        static_cast<unsigned long long>(delta.evaluations),
        static_cast<unsigned long long>(delta.delta_hits),
        static_cast<unsigned long long>(delta.full_fallbacks),
        static_cast<unsigned long long>(delta.bound_cuts), speedup);
  }

  Shape(identical,
        "answers and closeness are identical with delta evaluation on/off");
  Shape(wins >= 2,
        "delta evaluation is >=1.3x faster on >=2 deep-chase workloads");
  return identical ? env.Finish() : 1;
}
