// Ablation (beyond the paper): AnsW across the DBPSB-style template mix —
// per-shape timing/quality on a realistic query-log distribution (the §7
// benchmark instantiation protocol), complementing the uniform sweeps of
// Fig 10(c)/(h).

#include <map>

#include "bench_common.h"
#include "workload/templates.h"

using namespace wqe;
using namespace wqe::bench;

int main(int argc, char** argv) {
  BenchEnv env(argc, argv);
  Header("abl_workload_mix", "AnsW across the DBPSB template mix");

  Graph g = GenerateGraph(DbpediaLike(env.scale));
  auto queries = InstantiateWorkload(g, DbpsbTemplates(), env.queries * 3, env.seed);
  if (queries.empty()) {
    std::printf("abl_workload_mix,skipped,no-queries\n");
    return env.Finish();
  }

  // Build cases from the instantiated ground truths via the §7 protocol.
  GraphIndexes indexes(g);
  Matcher matcher(g, &indexes.dist);
  std::vector<BenchCase> cases;
  uint64_t seed = env.seed;
  for (const PatternQuery& gt : queries) {
    BenchCase c;
    c.ground_truth = gt;
    c.gt_answer = matcher.Answer(gt);
    if (c.gt_answer.empty()) continue;
    DisturbOptions dopts;
    dopts.seed = ++seed * 77;
    Disturbed d = DisturbQuery(g, indexes.adom, gt, dopts);
    c.q_answer = matcher.Answer(d.query);
    std::vector<NodeId> missing;
    std::set_difference(c.gt_answer.begin(), c.gt_answer.end(),
                        c.q_answer.begin(), c.q_answer.end(),
                        std::back_inserter(missing));
    if (missing.empty()) missing = c.gt_answer;
    if (missing.size() > 10) missing.resize(10);
    c.injected = std::move(d.injected);
    c.question.query = std::move(d.query);
    c.question.exemplar = Exemplar::FromEntities(g, missing);
    cases.push_back(std::move(c));
  }

  // Group by ground-truth shape.
  std::map<QueryShape, std::vector<BenchCase>> by_shape;
  for (BenchCase& c : cases) {
    by_shape[c.ground_truth.Shape()].push_back(std::move(c));
  }

  ChaseOptions base = DefaultChase();
  Aggregate all_delta;
  for (auto& [shape, shape_cases] : by_shape) {
    const size_t n = shape_cases.size();
    ExperimentRunner runner(g, std::move(shape_cases), env.threads,
                            env.cache_dir, &BenchObs());
    AlgoSummary s = runner.Run(MakeAnsW(base));
    PrintRow("abl_workload_mix", QueryShapeName(shape),
             "n=" + std::to_string(n), s);
    all_delta.Add(s.delta.Mean());
  }

  std::printf("#AGG mean delta across shapes=%.3f over %zu cases\n",
              all_delta.Mean(), cases.size());
  Shape(all_delta.Mean() >= 0.3,
        "AnsW recovers ground truth across the realistic template mix");
  return env.Finish();
}
