// Fig 10(l) / Exp-3: anytime performance — δ_t, the relative closeness
// (ground-truth answer Jaccard) of the best rewrite known at time t, for
// AnsW (picky operators, backtracking) vs AnsHeuB (random operator
// selection). The paper's claims: AnsW converges fast (δ_t above 90% of its
// final value early) while the random ablation takes longer for the same
// quality.
//
// Harder-than-default questions (4-edge queries, 5 injected operators,
// B = 5) keep the search running long enough to see a curve.

#include "bench_common.h"
#include "chase/solve.h"

using namespace wqe;
using namespace wqe::bench;

namespace {

// δ of the latest answer known at each time bin (the anytime answer before
// the first satisfying rewrite is the original query).
std::vector<double> DeltaCurve(const std::vector<AnytimeSample>& trace,
                               const std::vector<double>& bins, double floor_delta,
                               const std::vector<NodeId>& gt) {
  std::vector<double> curve(bins.size(), floor_delta);
  for (size_t b = 0; b < bins.size(); ++b) {
    for (const AnytimeSample& s : trace) {
      if (s.seconds <= bins[b]) curve[b] = AnswerJaccard(s.matches, gt);
    }
  }
  return curve;
}

}  // namespace

int main(int argc, char** argv) {
  BenchEnv env(argc, argv);
  Header("fig10l", "anytime convergence: delta_t by time t");

  Graph g = GenerateGraph(DbpediaLike(env.scale * 2));
  WhyFactoryOptions factory = DefaultFactory(env.seed);
  factory.query.num_edges = 4;
  factory.disturb.num_ops = 5;
  factory.max_tuples = 15;
  auto cases = MakeBenchCases(g, env.queries, factory);

  const std::vector<double> bins = {0.005, 0.02, 0.1, 0.3, 0.6, 1.0, 2.0};
  std::vector<Aggregate> answ_curve(bins.size()), rnd_curve(bins.size());
  Aggregate answ_final, rnd_final, answ_halfway_fraction;
  GraphIndexes indexes(g);

  for (const BenchCase& c : cases) {
    const double floor_delta = AnswerJaccard(c.q_answer, c.gt_answer);

    ChaseOptions base;
    base.budget = 5;
    base.max_steps = 100000;
    base.time_limit_seconds = bins.back();
    base.observability = &BenchObs();

    ChaseContext cw(g, &indexes, c.question, base);
    const ChaseResult rw = ExecuteWithContext(cw, Algorithm::kAnsW).result;
    auto curve_w = DeltaCurve(rw.trace, bins, floor_delta, c.gt_answer);

    ChaseOptions rnd = base;
    rnd.random_ops = true;
    rnd.beam = 3;
    ChaseContext cb(g, &indexes, c.question, rnd);
    const ChaseResult rb = ExecuteWithContext(cb, Algorithm::kAnsHeu).result;
    auto curve_b = DeltaCurve(rb.trace, bins, floor_delta, c.gt_answer);

    for (size_t b = 0; b < bins.size(); ++b) {
      answ_curve[b].Add(curve_w[b]);
      rnd_curve[b].Add(curve_b[b]);
    }
    answ_final.Add(curve_w.back());
    rnd_final.Add(curve_b.back());
    if (curve_w.back() > 1e-12) {
      answ_halfway_fraction.Add(curve_w[bins.size() / 2] / curve_w.back());
    }
  }

  for (size_t b = 0; b < bins.size(); ++b) {
    std::printf("fig10l,AnsW,t=%.3fs,delta=%.3f\n", bins[b],
                answ_curve[b].Mean());
  }
  for (size_t b = 0; b < bins.size(); ++b) {
    std::printf("fig10l,AnsHeuB,t=%.3fs,delta=%.3f\n", bins[b],
                rnd_curve[b].Mean());
  }
  std::printf("#AGG final delta AnsW=%.3f AnsHeuB=%.3f; AnsW halfway "
              "fraction=%.2f\n",
              answ_final.Mean(), rnd_final.Mean(),
              answ_halfway_fraction.Mean());

  bool dominates = true;
  for (size_t b = 0; b < bins.size(); ++b) {
    if (answ_curve[b].Mean() + 0.02 < rnd_curve[b].Mean()) dominates = false;
  }
  Shape(dominates,
        "AnsW's delta curve dominates random operator selection at every t");
  Shape(answ_final.Mean() + 0.02 >= rnd_final.Mean(),
        "AnsW's final delta is at least the random ablation's");
  Shape(answ_halfway_fraction.Mean() >= 0.6,
        "AnsW secures the bulk (>=60%) of its final delta by the halfway bin");
  return env.Finish();
}
