// Exp-5 (user study, simulated): the paper reports nDCG@3 = 0.71 against
// user re-rankings of top-3 rewrites and precision = 0.76 on user-labeled
// relevant entities. The human oracle is simulated by the ground truth
// (see DESIGN.md): the "user ranking" orders the top-3 rewrites by answer
// Jaccard to Q*(G), and the "desired match" labels are membership in Q*(G).

#include "bench_common.h"

using namespace wqe;
using namespace wqe::bench;

int main(int argc, char** argv) {
  BenchEnv env(argc, argv);
  Header("exp5", "simulated user study: nDCG@3 and precision of top-3 rewrites");

  ChaseOptions base = DefaultChase();
  base.top_k = 3;

  Aggregate ndcg_all, precision_all;
  for (const GraphSpec& spec : {DbpediaLike(env.scale), WatDivLike(env.scale)}) {
    Graph g = GenerateGraph(spec);
    auto cases = MakeBenchCases(g, env.queries, DefaultFactory(env.seed));

    Aggregate ndcg, precision;
    for (const BenchCase& c : cases) {
      Request req;
      req.question = c.question;
      req.options = base;
      req.algorithm = Algorithm::kAnsW;
      const ChaseResult r = Execute(g, req).result;
      if (!r.found()) continue;

      // Oracle relevance grade of each returned rewrite = answer Jaccard to
      // the ground truth; nDCG@3 compares AnsW's order to the oracle's.
      std::vector<double> gains;
      for (const WhyAnswer& a : r.answers) {
        gains.push_back(AnswerJaccard(a.matches, c.gt_answer));
      }
      ndcg.Add(NDCG(gains, 3));

      // Precision of the best rewrite's answers against the oracle labels.
      precision.Add(Precision(r.best().matches, c.gt_answer));
    }
    std::printf("exp5,%s,top3,nDCG3=%.3f,precision=%.3f,cases=%zu\n",
                spec.name.c_str(), ndcg.Mean(), precision.Mean(), ndcg.count);
    ndcg_all.Add(ndcg.Mean());
    precision_all.Add(precision.Mean());
  }

  std::printf("#AGG nDCG@3=%.3f precision=%.3f (paper: 0.71 / 0.76)\n",
              ndcg_all.Mean(), precision_all.Mean());
  Shape(ndcg_all.Mean() >= 0.6,
        "suggested rankings are consistent with the oracle (nDCG@3 high)");
  Shape(precision_all.Mean() >= 0.6,
        "suggested answers recover mostly relevant entities");
  return env.Finish();
}
