file(REMOVE_RECURSE
  "CMakeFiles/wqe_cli.dir/wqe_cli.cc.o"
  "CMakeFiles/wqe_cli.dir/wqe_cli.cc.o.d"
  "wqe"
  "wqe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wqe_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
