# Empty dependencies file for wqe_cli.
# This may be replaced when dependencies are built.
