# Empty dependencies file for closeness_test.
# This may be replaced when dependencies are built.
