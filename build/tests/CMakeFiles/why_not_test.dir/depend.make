# Empty dependencies file for why_not_test.
# This may be replaced when dependencies are built.
