file(REMOVE_RECURSE
  "CMakeFiles/why_not_test.dir/why_not_test.cc.o"
  "CMakeFiles/why_not_test.dir/why_not_test.cc.o.d"
  "why_not_test"
  "why_not_test.pdb"
  "why_not_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/why_not_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
