# Empty dependencies file for literal_test.
# This may be replaced when dependencies are built.
