# Empty compiler generated dependencies file for exemplar_text_test.
# This may be replaced when dependencies are built.
