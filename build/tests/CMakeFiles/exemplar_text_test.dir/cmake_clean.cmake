file(REMOVE_RECURSE
  "CMakeFiles/exemplar_text_test.dir/exemplar_text_test.cc.o"
  "CMakeFiles/exemplar_text_test.dir/exemplar_text_test.cc.o.d"
  "exemplar_text_test"
  "exemplar_text_test.pdb"
  "exemplar_text_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exemplar_text_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
