file(REMOVE_RECURSE
  "CMakeFiles/answ_test.dir/answ_test.cc.o"
  "CMakeFiles/answ_test.dir/answ_test.cc.o.d"
  "answ_test"
  "answ_test.pdb"
  "answ_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/answ_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
