# Empty dependencies file for answ_test.
# This may be replaced when dependencies are built.
