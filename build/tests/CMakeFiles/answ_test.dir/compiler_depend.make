# Empty compiler generated dependencies file for answ_test.
# This may be replaced when dependencies are built.
