# Empty dependencies file for multi_focus_test.
# This may be replaced when dependencies are built.
