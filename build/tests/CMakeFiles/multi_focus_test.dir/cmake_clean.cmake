file(REMOVE_RECURSE
  "CMakeFiles/multi_focus_test.dir/multi_focus_test.cc.o"
  "CMakeFiles/multi_focus_test.dir/multi_focus_test.cc.o.d"
  "multi_focus_test"
  "multi_focus_test.pdb"
  "multi_focus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_focus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
