# Empty compiler generated dependencies file for apx_whym_test.
# This may be replaced when dependencies are built.
