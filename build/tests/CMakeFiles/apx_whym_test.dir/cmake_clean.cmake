file(REMOVE_RECURSE
  "CMakeFiles/apx_whym_test.dir/apx_whym_test.cc.o"
  "CMakeFiles/apx_whym_test.dir/apx_whym_test.cc.o.d"
  "apx_whym_test"
  "apx_whym_test.pdb"
  "apx_whym_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apx_whym_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
