file(REMOVE_RECURSE
  "CMakeFiles/adom_test.dir/adom_test.cc.o"
  "CMakeFiles/adom_test.dir/adom_test.cc.o.d"
  "adom_test"
  "adom_test.pdb"
  "adom_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
