# Empty compiler generated dependencies file for adom_test.
# This may be replaced when dependencies are built.
