file(REMOVE_RECURSE
  "CMakeFiles/product_demo_test.dir/product_demo_test.cc.o"
  "CMakeFiles/product_demo_test.dir/product_demo_test.cc.o.d"
  "product_demo_test"
  "product_demo_test.pdb"
  "product_demo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/product_demo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
