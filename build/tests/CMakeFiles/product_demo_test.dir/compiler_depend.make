# Empty compiler generated dependencies file for product_demo_test.
# This may be replaced when dependencies are built.
