file(REMOVE_RECURSE
  "CMakeFiles/op_sequence_test.dir/op_sequence_test.cc.o"
  "CMakeFiles/op_sequence_test.dir/op_sequence_test.cc.o.d"
  "op_sequence_test"
  "op_sequence_test.pdb"
  "op_sequence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/op_sequence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
