# Empty compiler generated dependencies file for distance_index_test.
# This may be replaced when dependencies are built.
