file(REMOVE_RECURSE
  "CMakeFiles/distance_index_test.dir/distance_index_test.cc.o"
  "CMakeFiles/distance_index_test.dir/distance_index_test.cc.o.d"
  "distance_index_test"
  "distance_index_test.pdb"
  "distance_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distance_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
