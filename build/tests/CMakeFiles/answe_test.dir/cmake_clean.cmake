file(REMOVE_RECURSE
  "CMakeFiles/answe_test.dir/answe_test.cc.o"
  "CMakeFiles/answe_test.dir/answe_test.cc.o.d"
  "answe_test"
  "answe_test.pdb"
  "answe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/answe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
