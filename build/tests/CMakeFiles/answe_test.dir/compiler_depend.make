# Empty compiler generated dependencies file for answe_test.
# This may be replaced when dependencies are built.
