# Empty dependencies file for answe_test.
# This may be replaced when dependencies are built.
