file(REMOVE_RECURSE
  "CMakeFiles/relevance_test.dir/relevance_test.cc.o"
  "CMakeFiles/relevance_test.dir/relevance_test.cc.o.d"
  "relevance_test"
  "relevance_test.pdb"
  "relevance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relevance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
