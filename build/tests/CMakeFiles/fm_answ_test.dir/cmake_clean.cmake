file(REMOVE_RECURSE
  "CMakeFiles/fm_answ_test.dir/fm_answ_test.cc.o"
  "CMakeFiles/fm_answ_test.dir/fm_answ_test.cc.o.d"
  "fm_answ_test"
  "fm_answ_test.pdb"
  "fm_answ_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fm_answ_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
