file(REMOVE_RECURSE
  "CMakeFiles/tuple_pattern_test.dir/tuple_pattern_test.cc.o"
  "CMakeFiles/tuple_pattern_test.dir/tuple_pattern_test.cc.o.d"
  "tuple_pattern_test"
  "tuple_pattern_test.pdb"
  "tuple_pattern_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuple_pattern_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
