# Empty compiler generated dependencies file for tuple_pattern_test.
# This may be replaced when dependencies are built.
