file(REMOVE_RECURSE
  "CMakeFiles/ans_heu_test.dir/ans_heu_test.cc.o"
  "CMakeFiles/ans_heu_test.dir/ans_heu_test.cc.o.d"
  "ans_heu_test"
  "ans_heu_test.pdb"
  "ans_heu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ans_heu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
