# Empty dependencies file for ans_heu_test.
# This may be replaced when dependencies are built.
