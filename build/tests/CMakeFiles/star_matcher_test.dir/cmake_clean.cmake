file(REMOVE_RECURSE
  "CMakeFiles/star_matcher_test.dir/star_matcher_test.cc.o"
  "CMakeFiles/star_matcher_test.dir/star_matcher_test.cc.o.d"
  "star_matcher_test"
  "star_matcher_test.pdb"
  "star_matcher_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/star_matcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
