file(REMOVE_RECURSE
  "CMakeFiles/picky_test.dir/picky_test.cc.o"
  "CMakeFiles/picky_test.dir/picky_test.cc.o.d"
  "picky_test"
  "picky_test.pdb"
  "picky_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/picky_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
