# Empty compiler generated dependencies file for picky_test.
# This may be replaced when dependencies are built.
