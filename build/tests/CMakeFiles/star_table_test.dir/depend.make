# Empty dependencies file for star_table_test.
# This may be replaced when dependencies are built.
