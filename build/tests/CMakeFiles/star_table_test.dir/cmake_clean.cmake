file(REMOVE_RECURSE
  "CMakeFiles/star_table_test.dir/star_table_test.cc.o"
  "CMakeFiles/star_table_test.dir/star_table_test.cc.o.d"
  "star_table_test"
  "star_table_test.pdb"
  "star_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/star_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
