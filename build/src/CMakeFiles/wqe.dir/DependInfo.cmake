
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chase/ans_heu.cc" "src/CMakeFiles/wqe.dir/chase/ans_heu.cc.o" "gcc" "src/CMakeFiles/wqe.dir/chase/ans_heu.cc.o.d"
  "/root/repo/src/chase/answ.cc" "src/CMakeFiles/wqe.dir/chase/answ.cc.o" "gcc" "src/CMakeFiles/wqe.dir/chase/answ.cc.o.d"
  "/root/repo/src/chase/answe.cc" "src/CMakeFiles/wqe.dir/chase/answe.cc.o" "gcc" "src/CMakeFiles/wqe.dir/chase/answe.cc.o.d"
  "/root/repo/src/chase/apx_whym.cc" "src/CMakeFiles/wqe.dir/chase/apx_whym.cc.o" "gcc" "src/CMakeFiles/wqe.dir/chase/apx_whym.cc.o.d"
  "/root/repo/src/chase/chase.cc" "src/CMakeFiles/wqe.dir/chase/chase.cc.o" "gcc" "src/CMakeFiles/wqe.dir/chase/chase.cc.o.d"
  "/root/repo/src/chase/differential.cc" "src/CMakeFiles/wqe.dir/chase/differential.cc.o" "gcc" "src/CMakeFiles/wqe.dir/chase/differential.cc.o.d"
  "/root/repo/src/chase/eval.cc" "src/CMakeFiles/wqe.dir/chase/eval.cc.o" "gcc" "src/CMakeFiles/wqe.dir/chase/eval.cc.o.d"
  "/root/repo/src/chase/fm_answ.cc" "src/CMakeFiles/wqe.dir/chase/fm_answ.cc.o" "gcc" "src/CMakeFiles/wqe.dir/chase/fm_answ.cc.o.d"
  "/root/repo/src/chase/multi_focus.cc" "src/CMakeFiles/wqe.dir/chase/multi_focus.cc.o" "gcc" "src/CMakeFiles/wqe.dir/chase/multi_focus.cc.o.d"
  "/root/repo/src/chase/next_op.cc" "src/CMakeFiles/wqe.dir/chase/next_op.cc.o" "gcc" "src/CMakeFiles/wqe.dir/chase/next_op.cc.o.d"
  "/root/repo/src/chase/picky_refine.cc" "src/CMakeFiles/wqe.dir/chase/picky_refine.cc.o" "gcc" "src/CMakeFiles/wqe.dir/chase/picky_refine.cc.o.d"
  "/root/repo/src/chase/picky_relax.cc" "src/CMakeFiles/wqe.dir/chase/picky_relax.cc.o" "gcc" "src/CMakeFiles/wqe.dir/chase/picky_relax.cc.o.d"
  "/root/repo/src/chase/report.cc" "src/CMakeFiles/wqe.dir/chase/report.cc.o" "gcc" "src/CMakeFiles/wqe.dir/chase/report.cc.o.d"
  "/root/repo/src/chase/session.cc" "src/CMakeFiles/wqe.dir/chase/session.cc.o" "gcc" "src/CMakeFiles/wqe.dir/chase/session.cc.o.d"
  "/root/repo/src/chase/why_not.cc" "src/CMakeFiles/wqe.dir/chase/why_not.cc.o" "gcc" "src/CMakeFiles/wqe.dir/chase/why_not.cc.o.d"
  "/root/repo/src/common/interner.cc" "src/CMakeFiles/wqe.dir/common/interner.cc.o" "gcc" "src/CMakeFiles/wqe.dir/common/interner.cc.o.d"
  "/root/repo/src/exemplar/closeness.cc" "src/CMakeFiles/wqe.dir/exemplar/closeness.cc.o" "gcc" "src/CMakeFiles/wqe.dir/exemplar/closeness.cc.o.d"
  "/root/repo/src/exemplar/constraint.cc" "src/CMakeFiles/wqe.dir/exemplar/constraint.cc.o" "gcc" "src/CMakeFiles/wqe.dir/exemplar/constraint.cc.o.d"
  "/root/repo/src/exemplar/exemplar.cc" "src/CMakeFiles/wqe.dir/exemplar/exemplar.cc.o" "gcc" "src/CMakeFiles/wqe.dir/exemplar/exemplar.cc.o.d"
  "/root/repo/src/exemplar/exemplar_text.cc" "src/CMakeFiles/wqe.dir/exemplar/exemplar_text.cc.o" "gcc" "src/CMakeFiles/wqe.dir/exemplar/exemplar_text.cc.o.d"
  "/root/repo/src/exemplar/relevance.cc" "src/CMakeFiles/wqe.dir/exemplar/relevance.cc.o" "gcc" "src/CMakeFiles/wqe.dir/exemplar/relevance.cc.o.d"
  "/root/repo/src/exemplar/rep.cc" "src/CMakeFiles/wqe.dir/exemplar/rep.cc.o" "gcc" "src/CMakeFiles/wqe.dir/exemplar/rep.cc.o.d"
  "/root/repo/src/exemplar/similarity.cc" "src/CMakeFiles/wqe.dir/exemplar/similarity.cc.o" "gcc" "src/CMakeFiles/wqe.dir/exemplar/similarity.cc.o.d"
  "/root/repo/src/exemplar/tuple_pattern.cc" "src/CMakeFiles/wqe.dir/exemplar/tuple_pattern.cc.o" "gcc" "src/CMakeFiles/wqe.dir/exemplar/tuple_pattern.cc.o.d"
  "/root/repo/src/gen/datasets.cc" "src/CMakeFiles/wqe.dir/gen/datasets.cc.o" "gcc" "src/CMakeFiles/wqe.dir/gen/datasets.cc.o.d"
  "/root/repo/src/gen/product_demo.cc" "src/CMakeFiles/wqe.dir/gen/product_demo.cc.o" "gcc" "src/CMakeFiles/wqe.dir/gen/product_demo.cc.o.d"
  "/root/repo/src/gen/synthetic.cc" "src/CMakeFiles/wqe.dir/gen/synthetic.cc.o" "gcc" "src/CMakeFiles/wqe.dir/gen/synthetic.cc.o.d"
  "/root/repo/src/graph/adom.cc" "src/CMakeFiles/wqe.dir/graph/adom.cc.o" "gcc" "src/CMakeFiles/wqe.dir/graph/adom.cc.o.d"
  "/root/repo/src/graph/bfs.cc" "src/CMakeFiles/wqe.dir/graph/bfs.cc.o" "gcc" "src/CMakeFiles/wqe.dir/graph/bfs.cc.o.d"
  "/root/repo/src/graph/diameter.cc" "src/CMakeFiles/wqe.dir/graph/diameter.cc.o" "gcc" "src/CMakeFiles/wqe.dir/graph/diameter.cc.o.d"
  "/root/repo/src/graph/distance_index.cc" "src/CMakeFiles/wqe.dir/graph/distance_index.cc.o" "gcc" "src/CMakeFiles/wqe.dir/graph/distance_index.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/wqe.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/wqe.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/graph_io.cc" "src/CMakeFiles/wqe.dir/graph/graph_io.cc.o" "gcc" "src/CMakeFiles/wqe.dir/graph/graph_io.cc.o.d"
  "/root/repo/src/graph/schema.cc" "src/CMakeFiles/wqe.dir/graph/schema.cc.o" "gcc" "src/CMakeFiles/wqe.dir/graph/schema.cc.o.d"
  "/root/repo/src/graph/stats.cc" "src/CMakeFiles/wqe.dir/graph/stats.cc.o" "gcc" "src/CMakeFiles/wqe.dir/graph/stats.cc.o.d"
  "/root/repo/src/graph/value.cc" "src/CMakeFiles/wqe.dir/graph/value.cc.o" "gcc" "src/CMakeFiles/wqe.dir/graph/value.cc.o.d"
  "/root/repo/src/match/candidates.cc" "src/CMakeFiles/wqe.dir/match/candidates.cc.o" "gcc" "src/CMakeFiles/wqe.dir/match/candidates.cc.o.d"
  "/root/repo/src/match/matcher.cc" "src/CMakeFiles/wqe.dir/match/matcher.cc.o" "gcc" "src/CMakeFiles/wqe.dir/match/matcher.cc.o.d"
  "/root/repo/src/match/star.cc" "src/CMakeFiles/wqe.dir/match/star.cc.o" "gcc" "src/CMakeFiles/wqe.dir/match/star.cc.o.d"
  "/root/repo/src/match/star_matcher.cc" "src/CMakeFiles/wqe.dir/match/star_matcher.cc.o" "gcc" "src/CMakeFiles/wqe.dir/match/star_matcher.cc.o.d"
  "/root/repo/src/match/star_table.cc" "src/CMakeFiles/wqe.dir/match/star_table.cc.o" "gcc" "src/CMakeFiles/wqe.dir/match/star_table.cc.o.d"
  "/root/repo/src/match/view_cache.cc" "src/CMakeFiles/wqe.dir/match/view_cache.cc.o" "gcc" "src/CMakeFiles/wqe.dir/match/view_cache.cc.o.d"
  "/root/repo/src/query/literal.cc" "src/CMakeFiles/wqe.dir/query/literal.cc.o" "gcc" "src/CMakeFiles/wqe.dir/query/literal.cc.o.d"
  "/root/repo/src/query/op_sequence.cc" "src/CMakeFiles/wqe.dir/query/op_sequence.cc.o" "gcc" "src/CMakeFiles/wqe.dir/query/op_sequence.cc.o.d"
  "/root/repo/src/query/ops.cc" "src/CMakeFiles/wqe.dir/query/ops.cc.o" "gcc" "src/CMakeFiles/wqe.dir/query/ops.cc.o.d"
  "/root/repo/src/query/query.cc" "src/CMakeFiles/wqe.dir/query/query.cc.o" "gcc" "src/CMakeFiles/wqe.dir/query/query.cc.o.d"
  "/root/repo/src/query/query_text.cc" "src/CMakeFiles/wqe.dir/query/query_text.cc.o" "gcc" "src/CMakeFiles/wqe.dir/query/query_text.cc.o.d"
  "/root/repo/src/workload/disturb.cc" "src/CMakeFiles/wqe.dir/workload/disturb.cc.o" "gcc" "src/CMakeFiles/wqe.dir/workload/disturb.cc.o.d"
  "/root/repo/src/workload/metrics.cc" "src/CMakeFiles/wqe.dir/workload/metrics.cc.o" "gcc" "src/CMakeFiles/wqe.dir/workload/metrics.cc.o.d"
  "/root/repo/src/workload/query_gen.cc" "src/CMakeFiles/wqe.dir/workload/query_gen.cc.o" "gcc" "src/CMakeFiles/wqe.dir/workload/query_gen.cc.o.d"
  "/root/repo/src/workload/suite.cc" "src/CMakeFiles/wqe.dir/workload/suite.cc.o" "gcc" "src/CMakeFiles/wqe.dir/workload/suite.cc.o.d"
  "/root/repo/src/workload/templates.cc" "src/CMakeFiles/wqe.dir/workload/templates.cc.o" "gcc" "src/CMakeFiles/wqe.dir/workload/templates.cc.o.d"
  "/root/repo/src/workload/why_factory.cc" "src/CMakeFiles/wqe.dir/workload/why_factory.cc.o" "gcc" "src/CMakeFiles/wqe.dir/workload/why_factory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
