file(REMOVE_RECURSE
  "CMakeFiles/ecommerce_anytime.dir/ecommerce_anytime.cpp.o"
  "CMakeFiles/ecommerce_anytime.dir/ecommerce_anytime.cpp.o.d"
  "ecommerce_anytime"
  "ecommerce_anytime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecommerce_anytime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
