# Empty compiler generated dependencies file for ecommerce_anytime.
# This may be replaced when dependencies are built.
