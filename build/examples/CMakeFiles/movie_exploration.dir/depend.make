# Empty dependencies file for movie_exploration.
# This may be replaced when dependencies are built.
