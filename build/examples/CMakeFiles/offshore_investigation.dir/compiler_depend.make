# Empty compiler generated dependencies file for offshore_investigation.
# This may be replaced when dependencies are built.
