file(REMOVE_RECURSE
  "CMakeFiles/offshore_investigation.dir/offshore_investigation.cpp.o"
  "CMakeFiles/offshore_investigation.dir/offshore_investigation.cpp.o.d"
  "offshore_investigation"
  "offshore_investigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offshore_investigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
