file(REMOVE_RECURSE
  "CMakeFiles/multi_focus_search.dir/multi_focus_search.cpp.o"
  "CMakeFiles/multi_focus_search.dir/multi_focus_search.cpp.o.d"
  "multi_focus_search"
  "multi_focus_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_focus_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
