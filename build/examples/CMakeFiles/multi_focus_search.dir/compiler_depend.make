# Empty compiler generated dependencies file for multi_focus_search.
# This may be replaced when dependencies are built.
