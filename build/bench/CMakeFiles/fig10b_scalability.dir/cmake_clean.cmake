file(REMOVE_RECURSE
  "CMakeFiles/fig10b_scalability.dir/fig10b_scalability.cc.o"
  "CMakeFiles/fig10b_scalability.dir/fig10b_scalability.cc.o.d"
  "fig10b_scalability"
  "fig10b_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10b_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
