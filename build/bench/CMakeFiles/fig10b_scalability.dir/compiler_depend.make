# Empty compiler generated dependencies file for fig10b_scalability.
# This may be replaced when dependencies are built.
