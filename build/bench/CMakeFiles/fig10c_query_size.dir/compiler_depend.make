# Empty compiler generated dependencies file for fig10c_query_size.
# This may be replaced when dependencies are built.
