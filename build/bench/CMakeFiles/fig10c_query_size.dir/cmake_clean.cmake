file(REMOVE_RECURSE
  "CMakeFiles/fig10c_query_size.dir/fig10c_query_size.cc.o"
  "CMakeFiles/fig10c_query_size.dir/fig10c_query_size.cc.o.d"
  "fig10c_query_size"
  "fig10c_query_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10c_query_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
