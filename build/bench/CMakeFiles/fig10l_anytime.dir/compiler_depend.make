# Empty compiler generated dependencies file for fig10l_anytime.
# This may be replaced when dependencies are built.
