file(REMOVE_RECURSE
  "CMakeFiles/fig10l_anytime.dir/fig10l_anytime.cc.o"
  "CMakeFiles/fig10l_anytime.dir/fig10l_anytime.cc.o.d"
  "fig10l_anytime"
  "fig10l_anytime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10l_anytime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
