file(REMOVE_RECURSE
  "CMakeFiles/fig10g_exemplar_imdb.dir/fig10g_exemplar_imdb.cc.o"
  "CMakeFiles/fig10g_exemplar_imdb.dir/fig10g_exemplar_imdb.cc.o.d"
  "fig10g_exemplar_imdb"
  "fig10g_exemplar_imdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10g_exemplar_imdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
