# Empty compiler generated dependencies file for fig10g_exemplar_imdb.
# This may be replaced when dependencies are built.
