# Empty dependencies file for fig10h_topology.
# This may be replaced when dependencies are built.
