file(REMOVE_RECURSE
  "CMakeFiles/fig10h_topology.dir/fig10h_topology.cc.o"
  "CMakeFiles/fig10h_topology.dir/fig10h_topology.cc.o.d"
  "fig10h_topology"
  "fig10h_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10h_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
