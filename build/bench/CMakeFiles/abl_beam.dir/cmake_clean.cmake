file(REMOVE_RECURSE
  "CMakeFiles/abl_beam.dir/abl_beam.cc.o"
  "CMakeFiles/abl_beam.dir/abl_beam.cc.o.d"
  "abl_beam"
  "abl_beam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_beam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
