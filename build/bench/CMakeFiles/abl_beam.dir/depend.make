# Empty dependencies file for abl_beam.
# This may be replaced when dependencies are built.
