file(REMOVE_RECURSE
  "CMakeFiles/fig12c_whyempty.dir/fig12c_whyempty.cc.o"
  "CMakeFiles/fig12c_whyempty.dir/fig12c_whyempty.cc.o.d"
  "fig12c_whyempty"
  "fig12c_whyempty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12c_whyempty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
