# Empty compiler generated dependencies file for fig12c_whyempty.
# This may be replaced when dependencies are built.
