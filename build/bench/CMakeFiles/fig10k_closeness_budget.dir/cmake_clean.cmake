file(REMOVE_RECURSE
  "CMakeFiles/fig10k_closeness_budget.dir/fig10k_closeness_budget.cc.o"
  "CMakeFiles/fig10k_closeness_budget.dir/fig10k_closeness_budget.cc.o.d"
  "fig10k_closeness_budget"
  "fig10k_closeness_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10k_closeness_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
