# Empty dependencies file for fig10k_closeness_budget.
# This may be replaced when dependencies are built.
