# Empty dependencies file for fig12b_whymany_quality.
# This may be replaced when dependencies are built.
