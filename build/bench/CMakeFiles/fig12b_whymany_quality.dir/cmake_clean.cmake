file(REMOVE_RECURSE
  "CMakeFiles/fig12b_whymany_quality.dir/fig12b_whymany_quality.cc.o"
  "CMakeFiles/fig12b_whymany_quality.dir/fig12b_whymany_quality.cc.o.d"
  "fig12b_whymany_quality"
  "fig12b_whymany_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12b_whymany_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
