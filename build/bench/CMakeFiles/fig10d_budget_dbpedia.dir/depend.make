# Empty dependencies file for fig10d_budget_dbpedia.
# This may be replaced when dependencies are built.
