file(REMOVE_RECURSE
  "CMakeFiles/fig10d_budget_dbpedia.dir/fig10d_budget_dbpedia.cc.o"
  "CMakeFiles/fig10d_budget_dbpedia.dir/fig10d_budget_dbpedia.cc.o.d"
  "fig10d_budget_dbpedia"
  "fig10d_budget_dbpedia.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10d_budget_dbpedia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
