file(REMOVE_RECURSE
  "CMakeFiles/fig10f_exemplar_dbpedia.dir/fig10f_exemplar_dbpedia.cc.o"
  "CMakeFiles/fig10f_exemplar_dbpedia.dir/fig10f_exemplar_dbpedia.cc.o.d"
  "fig10f_exemplar_dbpedia"
  "fig10f_exemplar_dbpedia.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10f_exemplar_dbpedia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
