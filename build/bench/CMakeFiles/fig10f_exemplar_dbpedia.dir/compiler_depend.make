# Empty compiler generated dependencies file for fig10f_exemplar_dbpedia.
# This may be replaced when dependencies are built.
