file(REMOVE_RECURSE
  "CMakeFiles/fig10a_efficiency.dir/fig10a_efficiency.cc.o"
  "CMakeFiles/fig10a_efficiency.dir/fig10a_efficiency.cc.o.d"
  "fig10a_efficiency"
  "fig10a_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10a_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
