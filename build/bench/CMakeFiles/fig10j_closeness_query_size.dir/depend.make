# Empty dependencies file for fig10j_closeness_query_size.
# This may be replaced when dependencies are built.
