file(REMOVE_RECURSE
  "CMakeFiles/fig10j_closeness_query_size.dir/fig10j_closeness_query_size.cc.o"
  "CMakeFiles/fig10j_closeness_query_size.dir/fig10j_closeness_query_size.cc.o.d"
  "fig10j_closeness_query_size"
  "fig10j_closeness_query_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10j_closeness_query_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
