file(REMOVE_RECURSE
  "CMakeFiles/exp5_user_study.dir/exp5_user_study.cc.o"
  "CMakeFiles/exp5_user_study.dir/exp5_user_study.cc.o.d"
  "exp5_user_study"
  "exp5_user_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp5_user_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
