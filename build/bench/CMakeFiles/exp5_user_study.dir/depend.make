# Empty dependencies file for exp5_user_study.
# This may be replaced when dependencies are built.
