file(REMOVE_RECURSE
  "CMakeFiles/abl_distance_index.dir/abl_distance_index.cc.o"
  "CMakeFiles/abl_distance_index.dir/abl_distance_index.cc.o.d"
  "abl_distance_index"
  "abl_distance_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_distance_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
