# Empty compiler generated dependencies file for abl_distance_index.
# This may be replaced when dependencies are built.
