# Empty dependencies file for fig12a_whymany_time.
# This may be replaced when dependencies are built.
