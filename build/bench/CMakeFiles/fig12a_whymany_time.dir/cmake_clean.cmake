file(REMOVE_RECURSE
  "CMakeFiles/fig12a_whymany_time.dir/fig12a_whymany_time.cc.o"
  "CMakeFiles/fig12a_whymany_time.dir/fig12a_whymany_time.cc.o.d"
  "fig12a_whymany_time"
  "fig12a_whymany_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12a_whymany_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
