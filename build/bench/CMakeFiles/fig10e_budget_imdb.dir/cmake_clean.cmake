file(REMOVE_RECURSE
  "CMakeFiles/fig10e_budget_imdb.dir/fig10e_budget_imdb.cc.o"
  "CMakeFiles/fig10e_budget_imdb.dir/fig10e_budget_imdb.cc.o.d"
  "fig10e_budget_imdb"
  "fig10e_budget_imdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10e_budget_imdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
