# Empty dependencies file for fig10e_budget_imdb.
# This may be replaced when dependencies are built.
