# Empty compiler generated dependencies file for abl_star_order.
# This may be replaced when dependencies are built.
