file(REMOVE_RECURSE
  "CMakeFiles/abl_star_order.dir/abl_star_order.cc.o"
  "CMakeFiles/abl_star_order.dir/abl_star_order.cc.o.d"
  "abl_star_order"
  "abl_star_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_star_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
