# Empty compiler generated dependencies file for fig10i_effectiveness.
# This may be replaced when dependencies are built.
