file(REMOVE_RECURSE
  "CMakeFiles/fig10i_effectiveness.dir/fig10i_effectiveness.cc.o"
  "CMakeFiles/fig10i_effectiveness.dir/fig10i_effectiveness.cc.o.d"
  "fig10i_effectiveness"
  "fig10i_effectiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10i_effectiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
